"""Figure 12 / Figure 18 — DGQ vs MT for all-pair ToR-to-ToR reachability.

The LNet-apsp setting: per-rack verification, all ToRs as sources; each
switch's rule insertions arrive as one batch and the reachability check
runs after every batch, two ways:

* **DGQ** — the decremental verification graph: prune the newly
  synchronised device's edges, repair the reachability forest, answer in
  near-constant time;
* **MT** — model traversal (§5.4): depth-first traversal of the *inverse
  model's* forwarding edges from every source ToR.

Figure 12 is the distribution of per-check times; Figure 18 is the series
over processed updates — MT grows as the model fills with edges, DGQ does
not.
"""

from __future__ import annotations

import time
from typing import Dict, List

import pytest

from repro.ce2d.reachability import DgqReachability
from repro.ce2d.verification_graph import VerificationGraph
from repro.core.model_manager import ModelWriter
from repro.dataplane.rule import next_hops_of
from repro.dataplane.update import insert
from repro.spec.ast import SelectorContext
from repro.spec.dfa import compile_path_set
from repro.spec.parser import parse_path_set

from .harness import save_json


def _percentile(values: List[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def model_traversal_reachable(manager, topo, sources, rack, vec) -> bool:
    """MT: full depth-first traversal of the model from each source ToR.

    Mirrors §5.4's baseline: compute each source's reachable set over the
    model's forwarding edges (no early exit), then test the destination —
    O(|V|·(|V|+|E|)) per check, growing as rules fill the model in.
    """
    reached_any = False
    for src in sources:
        seen = {src}
        stack = [src]
        while stack:
            node = stack.pop()
            action = manager.model.action_of(vec, node)
            if action is None:
                continue
            for hop in next_hops_of(action):
                if hop not in seen:
                    seen.add(hop)
                    if topo.has_device(hop) and not topo.device(hop).is_external:
                        stack.append(hop)
        if rack in seen:
            reached_any = True
    return reached_any


def run_reachability_experiment():
    # A dedicated 8-pod fabric: 64 racks x 84 switches = 5,376 per-batch
    # checks, matching the paper's "5,376 verification graphs in total".
    from repro.fibgen.shortest_path import std_fib
    from repro.headerspace.fields import dst_only_layout
    from repro.network.generators import fabric

    topo = fabric(pods=8, tors_per_pod=8, fabrics_per_pod=2, spines_per_plane=2)
    layout = dst_only_layout(10)
    rules_per_device = std_fib(topo, layout)
    tors = topo.select(role="tor")
    racks = topo.externals()

    manager = ModelWriter(topo.switches(), layout)
    automaton = compile_path_set(parse_path_set(". .* >"))
    graphs: Dict[int, VerificationGraph] = {}
    dgq: Dict[int, DgqReachability] = {}
    for rack in racks:
        context = SelectorContext(frozenset([rack]))
        graph = VerificationGraph(topo, automaton, tors, context)
        graphs[rack] = graph
        dgq[rack] = DgqReachability(graph)

    dgq_times: List[float] = []
    mt_times: List[float] = []
    series: List[Dict[str, float]] = []
    processed = 0
    final_agreement = True

    devices = list(rules_per_device)
    for device in devices:
        rules = rules_per_device[device]
        manager.submit([insert(device, r) for r in rules])
        manager.flush()
        processed += len(rules)
        for rack in racks:
            value, _length = topo.device(rack).label("prefixes")[0]
            bits = dict(layout.bits_of("dst", value))
            vec = manager.model.vector_for(bits)
            action = manager.model.action_of(vec, device)

            start = time.perf_counter()
            removed = graphs[rack].prune_device(device, action)
            dgq[rack].delete_edges(removed)
            dgq_ok = dgq[rack].accept_reachable()
            dgq_times.append(time.perf_counter() - start)

            start = time.perf_counter()
            mt_ok = model_traversal_reachable(manager, topo, tors, rack, vec)
            mt_times.append(time.perf_counter() - start)
        series.append(
            {
                "updates": processed,
                "dgq_ms": 1e3 * sum(dgq_times[-len(racks):]) / len(racks),
                "mt_ms": 1e3 * sum(mt_times[-len(racks):]) / len(racks),
            }
        )
    # After full synchronisation both methods must agree per rack.
    for rack in racks:
        value, _length = topo.device(rack).label("prefixes")[0]
        bits = dict(layout.bits_of("dst", value))
        vec = manager.model.vector_for(bits)
        if dgq[rack].accept_reachable() != model_traversal_reachable(
            manager, topo, tors, rack, vec
        ):
            final_agreement = False
    return dgq_times, mt_times, series, final_agreement


def bench_fig12_dgq_vs_mt(benchmark):
    result = {}

    def run():
        result["value"] = run_reachability_experiment()
        return result["value"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    dgq_times, mt_times, series, final_agreement = result["value"]

    def stats(values):
        return {
            "median_ms": 1e3 * _percentile(values, 0.5),
            "mean_ms": 1e3 * sum(values) / len(values),
            "p99_ms": 1e3 * _percentile(values, 0.99),
            "max_ms": 1e3 * max(values),
        }

    dgq_stats, mt_stats = stats(dgq_times), stats(mt_times)
    print("\n=== Figure 12 — reachability check time (DGQ vs MT) ===")
    print(f"{'':<8} {'median':>9} {'mean':>9} {'p99':>9} {'max':>9}  (ms)")
    for name, s in (("DGQ", dgq_stats), ("MT", mt_stats)):
        print(
            f"{name:<8} {s['median_ms']:>9.3f} {s['mean_ms']:>9.3f} "
            f"{s['p99_ms']:>9.3f} {s['max_ms']:>9.3f}"
        )
    speedup = mt_stats["p99_ms"] / max(dgq_stats["p99_ms"], 1e-9)
    print(f"p99 speedup DGQ over MT: {speedup:.1f}x over {len(dgq_times)} checks")

    print("\n=== Figure 18 — check time vs processed updates ===")
    for point in series[:: max(1, len(series) // 10)]:
        print(
            f"updates={point['updates']:>7}  DGQ={point['dgq_ms']:.3f}ms  "
            f"MT={point['mt_ms']:.3f}ms"
        )
    save_json(
        "fig12_fig18_dgq",
        {"dgq": dgq_stats, "mt": mt_stats, "series": series},
    )
    assert final_agreement, "DGQ and MT disagree on the converged state"
    # Paper shape: DGQ's tail beats MT's substantially.
    assert dgq_stats["p99_ms"] < mt_stats["p99_ms"]
    # Figure 18 shape: MT per-check time grows as the model fills up.
    early = sum(p["mt_ms"] for p in series[:3]) / 3
    late = sum(p["mt_ms"] for p in series[-3:]) / 3
    assert late > early
