"""Scaled evaluation settings mirroring Table 2.

Every setting of the paper's Table 2 is rebuilt here at laptop scale.  The
``REPRO_SCALE`` environment variable selects the scale tier:

* ``small``  (default) — whole benchmark suite in minutes;
* ``medium`` — closer to the paper's proportions, tens of minutes;
* ``large``  — stress tier.

The *shape* of every workload matches Table 2: topology family, FIB pattern
(apsp / source-match ECMP / suffix-match routing / trace prefixes) and the
"insert each rule in a sequence and then delete it in the same order"
update generation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.subspace import SubspacePartition
from repro.dataplane.rule import Rule
from repro.dataplane.trace import insert_then_delete, inserts_only
from repro.dataplane.update import RuleUpdate
from repro.fibgen.addressing import assign_rack_prefixes, rack_destinations
from repro.fibgen.ecmp import std_fib_ecmp
from repro.fibgen.shortest_path import std_fib
from repro.fibgen.suffix import std_fib_suffix
from repro.headerspace.fields import (
    HeaderLayout,
    dst_only_layout,
    dst_src_layout,
)
from repro.network.generators import airtel, fabric, internet2, stanford
from repro.network.topology import Topology

SCALE = os.environ.get("REPRO_SCALE", "small")

_FABRIC_DIMS = {
    # pods, tors_per_pod, fabrics_per_pod, spines_per_plane
    "small": (4, 4, 2, 2),
    "medium": (8, 8, 4, 2),
    "large": (12, 12, 4, 4),
}

_DST_WIDTH = {"small": 10, "medium": 12, "large": 14}
_SRC_WIDTH = {"small": 4, "medium": 6, "large": 6}


@dataclass
class Setting:
    """One evaluation setting: topology + FIB + update trace."""

    name: str
    topology: Topology
    layout: HeaderLayout
    rules_per_device: Dict[int, List[Rule]]
    partition: Optional[SubspacePartition] = None

    @property
    def fib_scale(self) -> int:
        return sum(len(r) for r in self.rules_per_device.values())

    def storm_updates(self) -> List[RuleUpdate]:
        """Figure 6 style: all insertions as one burst."""
        return inserts_only(self.rules_per_device)

    def trace_updates(self) -> List[RuleUpdate]:
        """Table 2 style: insert each rule in sequence, then delete."""
        return insert_then_delete(self.rules_per_device)

    def describe(self) -> str:
        return (
            f"{self.name}: |V|={self.topology.num_devices} "
            f"|E|={len(self.topology.directed_edges())} "
            f"rules={self.fib_scale}"
        )


def _lnet_topology() -> Topology:
    pods, tors, fabs, spines = _FABRIC_DIMS[SCALE]
    return fabric(
        pods=pods,
        tors_per_pod=tors,
        fabrics_per_pod=fabs,
        spines_per_plane=spines,
        name="LNet",
    )


def _pod_partition(topology: Topology, layout: HeaderLayout) -> SubspacePartition:
    """One subspace per pod: the per-pod dst-prefix blocks of §5.5."""
    pods = sorted(
        {d.label("pod") for d in topology.devices() if d.label("pod") is not None}
    )
    racks = rack_destinations(topology)
    width = layout.field("dst").width
    plen = max(1, (len(racks) - 1).bit_length())
    racks_per_pod = len(racks) // len(pods)
    # Pod p owns racks [p*rpp, (p+1)*rpp): its block starts at rack p*rpp
    # and keeps log2(racks_per_pod) free bits below the pod bits.
    block_len = plen - max(0, (racks_per_pod - 1).bit_length())
    prefixes = [
        ((p * racks_per_pod) << (width - plen), block_len) for p in pods
    ]
    return SubspacePartition.dst_prefix_partition(
        layout, prefixes, names=[f"pod{p}" for p in pods]
    )


def lnet_apsp() -> Setting:
    topo = _lnet_topology()
    layout = dst_only_layout(_DST_WIDTH[SCALE])
    rules = std_fib(topo, layout)
    return Setting("LNet-apsp", topo, layout, rules, _pod_partition(topo, layout))


def lnet_ecmp() -> Setting:
    topo = _lnet_topology()
    layout = dst_src_layout(_DST_WIDTH[SCALE], _SRC_WIDTH[SCALE])
    rules = std_fib_ecmp(topo, layout, src_buckets=4)
    return Setting("LNet-ecmp", topo, layout, rules, _pod_partition(topo, layout))


def lnet_smr() -> Setting:
    topo = _lnet_topology()
    layout = dst_only_layout(_DST_WIDTH[SCALE])
    rules = std_fib_suffix(topo, layout, suffix_bits=2)
    return Setting("LNet-smr", topo, layout, rules, _pod_partition(topo, layout))


def _loopback_setting(name: str, topo: Topology, width: int) -> Setting:
    """Trace settings: every switch owns a prefix; apsp FIB toward each."""
    layout = dst_only_layout(width)
    for switch in topo.switches():
        host = topo.add_external(f"h_{topo.name_of(switch)}")
        topo.add_link(switch, host)
    rules = std_fib(topo, layout)
    return Setting(name, topo, layout, rules)


def airtel_trace() -> Setting:
    n = {"small": 24, "medium": 68, "large": 68}[SCALE]
    links = {"small": 44, "medium": 130, "large": 130}[SCALE]
    return _loopback_setting("Airtel-trace", airtel(n=n, links=links), 10)


def stanford_trace() -> Setting:
    return _loopback_setting("Stanford-trace", stanford(), 8)


def i2_trace() -> Setting:
    return _loopback_setting("I2-trace", internet2(), 8)


ALL_SETTINGS: Dict[str, Callable[[], Setting]] = {
    "LNet-apsp": lnet_apsp,
    "LNet-ecmp": lnet_ecmp,
    "LNet-smr": lnet_smr,
    "Airtel-trace": airtel_trace,
    "Stanford-trace": stanford_trace,
    "I2-trace": i2_trace,
}
