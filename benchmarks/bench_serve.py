"""Serving benchmark and consistency gate (``BENCH_serve.json``).

The new headline scaling number for the verification-as-a-service layer
(``repro.serve``): N query clients race one update storm against a
:class:`~repro.serve.daemon.ServeDaemon`, and the harness reports p50 /
p99 query latency and sustained QPS per setting.  Unlike the other
benches, the first-class result here is a *proof obligation*: after the
run, **every** served answer is re-derived from the batch oracle at the
serve epoch it was pinned to (replay of exactly that many batches
through a plain single-threaded ``ModelWriter``), and any mismatch
fails the run outright — latency numbers from an inconsistent server
are worthless.

Settings
--------
* ``read_heavy`` — many clients, few churn blocks: snapshots live long,
  the epoch-keyed result cache should carry most of the load (the gate
  checks a cache hit-rate floor).
* ``mixed_storm`` — the headline: clients and a sustained storm in
  parallel, snapshot isolation ``copy`` (readers never touch the
  writer's engine).
* ``shared_lock`` — the same storm under ``shared`` isolation (readers
  serialise with the writer on one lock): the consistency contract must
  hold in both modes.

Gating
------
Hardware-transferable invariants only (latency/QPS are reported, not
gated): zero oracle divergences, zero ingest failures, every client
got every answer, epochs actually advanced mid-run, and ``read_heavy``
clears a cache hit-rate floor.  ``--check`` additionally compares the
cache hit rate per setting against the committed baseline.

Usage
-----
    PYTHONPATH=src python benchmarks/bench_serve.py              # full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick      # CI smoke
    PYTHONPATH=src python benchmarks/bench_serve.py --check      # gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve.load import ServeWorkload, build_workload, run_load

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_serve.json"
)

#: ``read_heavy`` must keep at least this cache hit rate (same-snapshot
#: repeat queries are the whole point of the epoch-keyed cache).
CACHE_FLOOR = 0.15
#: Per-setting cache hit rate may drop at most this far below baseline.
TOLERANCE = 0.5


def _settings(seed: int, quick: bool) -> Dict[str, Dict[str, object]]:
    """name → (workload, run_load kwargs)."""
    mixed = build_workload(seed, quick, name="mixed_storm")
    shared = build_workload(seed + 1, quick, name="shared_lock")
    read_wl = build_workload(seed + 2, quick, name="read_heavy")
    # Read-heavy: fewer blocks, more query pressure on stable snapshots.
    read_wl.blocks = read_wl.blocks[: max(1, len(read_wl.blocks) // 4)]
    read_wl.clients = read_wl.clients + 2
    read_wl.queries_per_client = read_wl.queries_per_client * 2
    return {
        "read_heavy": {"workload": read_wl, "isolation": "copy"},
        "mixed_storm": {"workload": mixed, "isolation": "copy"},
        "shared_lock": {"workload": shared, "isolation": "shared"},
    }


def run_suite(quick: bool, seed: int) -> Dict[str, object]:
    report: Dict[str, object] = {
        "seed": seed,
        "mode": "quick" if quick else "full",
        "python": sys.version.split()[0],
        "settings": {},
    }
    for name, spec in _settings(seed, quick).items():
        workload: ServeWorkload = spec["workload"]
        result = run_load(
            workload, seed=seed, isolation=spec["isolation"]
        )
        if result.divergences:
            for d in result.divergences[:5]:
                print(f"DIVERGENCE [{name}]: {d}", file=sys.stderr)
            raise AssertionError(
                f"{name}: {len(result.divergences)} served answers diverged "
                "from the batch oracle"
            )
        row = result.as_dict()
        row["isolation"] = spec["isolation"]
        row["expected_queries"] = workload.clients * workload.queries_per_client
        report["settings"][name] = row
        print(
            f"{name:<12} q={result.queries:<4} qps={result.qps:8.0f} "
            f"p50={result.p50_ms:6.2f}ms p99={result.p99_ms:7.2f}ms "
            f"epochs={result.final_epoch:<3} "
            f"mid-storm={result.mid_storm_queries:<4} "
            f"hit-rate={result.cache_hit_rate:.2f} "
            f"divergences={len(result.divergences)}"
        )
    return report


def check_invariants(report: Dict[str, object]) -> List[str]:
    """Hardware-independent gates every run must satisfy."""
    failures: List[str] = []
    for name, row in report["settings"].items():
        if row["divergences"] != 0:
            failures.append(f"{name}: {row['divergences']} oracle divergences")
        if row["ingest_failures"] != 0:
            failures.append(f"{name}: {row['ingest_failures']} ingest failures")
        if row["queries"] != row["expected_queries"]:
            failures.append(
                f"{name}: served {row['queries']} of "
                f"{row['expected_queries']} queries"
            )
        if row["final_epoch"] < 2:
            failures.append(
                f"{name}: only {row['final_epoch']} epochs — the storm "
                "never advanced the model"
            )
    read_heavy = report["settings"].get("read_heavy")
    if read_heavy and read_heavy["cache_hit_rate"] < CACHE_FLOOR:
        failures.append(
            f"read_heavy: cache hit rate {read_heavy['cache_hit_rate']:.2f} "
            f"below the {CACHE_FLOOR:.2f} floor"
        )
    return failures


def check_against_baseline(
    report: Dict[str, object], baseline_path: str
) -> List[str]:
    """Invariants plus relative cache-behaviour drift vs the baseline."""
    failures = check_invariants(report)
    try:
        with open(baseline_path, "r", encoding="utf-8") as f:
            baseline = json.load(f)
    except FileNotFoundError:
        return failures + [f"baseline file not found: {baseline_path}"]
    base_section = baseline.get("modes", {}).get(report["mode"])
    if base_section is None:
        return failures + [
            f"baseline has no {report['mode']!r} section: {baseline_path}"
        ]
    for name, row in report["settings"].items():
        base = base_section.get("settings", {}).get(name)
        if base is None:
            continue
        floor = base["cache_hit_rate"] * (1.0 - TOLERANCE)
        if row["cache_hit_rate"] < floor:
            failures.append(
                f"{name}: cache hit rate {row['cache_hit_rate']:.2f} "
                f"regressed >50% below baseline "
                f"{base['cache_hit_rate']:.2f} (floor {floor:.2f})"
            )
    return failures


def merge_into_baseline(report: Dict[str, object], path: str) -> None:
    try:
        with open(path, "r", encoding="utf-8") as f:
            payload = json.load(f)
    except (FileNotFoundError, ValueError):
        payload = {}
    payload.setdefault("schema", "bench_serve/1")
    payload.setdefault("modes", {})[report["mode"]] = report
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--seed", type=int, default=29)
    parser.add_argument(
        "--output",
        default=None,
        help="merge the JSON report into this baseline file (default: "
        "BENCH_serve.json at the repo root when not in --check mode)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate: zero divergences/failures, epochs advanced, cache "
        "floors, plus relative drift against the committed baseline",
    )
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    args = parser.parse_args(argv)

    report = run_suite(args.quick, args.seed)

    output = args.output
    if output is None and not args.check:
        output = DEFAULT_BASELINE
    if output:
        merge_into_baseline(report, output)
        print(f"wrote {output}")

    failures = (
        check_against_baseline(report, args.baseline)
        if args.check
        else check_invariants(report)
    )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("serve consistency gate passed (zero divergences)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
