"""Figure 10 — early loop detection vs number of dampened switches.

The I2-trace-loop-lt setting with D ∈ {1..7} dampened devices, multiple
random trials per D.  The paper's shape: early detection stays likely
(>90%) for D ≤ 3 and degrades as most of the network goes dark (~20% at
D = 7, i.e. 7/9 of the switches dampened).
"""

from __future__ import annotations

import random
from typing import Optional

import pytest

from repro.results import Verdict
from repro.flash import Flash
from repro.headerspace.fields import dst_only_layout
from repro.network.generators import internet2
from repro.routing.openr import OpenRSimulation

from .harness import save_json

LAYOUT = dst_only_layout(8)
TRIALS_PER_D = 12
DAMPEN_SECONDS = 60.0
EARLY_CUTOFF = 1.0  # anything below this is "early" vs the 60 s tail


def run_trial(seed: int, num_dampened: int) -> Optional[float]:
    topo = internet2()
    rng = random.Random(seed)
    switches = topo.switches()
    # Deterministically corrupt one switch into a 2-loop (see Figure 9).
    sim = OpenRSimulation(topo, LAYOUT, seed=seed)
    sim.bootstrap()
    sim.run()
    candidates = []
    for victim in switches:
        for dest, rule in sim.nodes[victim].fib.items():
            for neighbor in topo.neighbors(victim):
                if topo.device(neighbor).is_external:
                    continue
                back = sim.nodes[neighbor].fib.get(dest)
                if back is not None and back.action == victim:
                    candidates.append((victim, dest, neighbor))
    victim, dest, neighbor = candidates[rng.randrange(len(candidates))]
    dampened = set(
        rng.sample([s for s in switches if s != victim], num_dampened)
    )
    flash = Flash(topo, LAYOUT, check_loops=True)
    for i, b in enumerate(sim.batches):
        updates = list(b.updates)
        if b.device == victim:
            for j, u in enumerate(updates):
                if u.is_insert and u.rule == sim.nodes[victim].fib[dest]:
                    bad = type(u.rule)(u.rule.priority, u.rule.match, neighbor)
                    updates[j] = type(u)(u.op, u.device, bad, u.epoch)
        when = i * 0.01 + (DAMPEN_SECONDS if b.device in dampened else 0.0)
        flash.receive(b.device, b.tag, updates, now=when)
    loops = [
        r for r in flash.dispatcher.reports if r.verdict is Verdict.VIOLATED
    ]
    return min(r.time for r in loops) if loops else None


def bench_fig10_dampened_switches(benchmark):
    series = {}

    def run():
        series.clear()
        for d in range(1, 8):
            times = [
                run_trial(seed * 31 + d, d) for seed in range(TRIALS_PER_D)
            ]
            early = [t for t in times if t is not None and t < EARLY_CUTOFF]
            series[d] = {
                "trials": len(times),
                "early": len(early),
                "fraction": len(early) / len(times),
            }
        return series

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Figure 10 — early detection vs dampened switches D ===")
    print(f"{'D':>3} {'early/trials':>14} {'fraction':>9}")
    for d, row in series.items():
        print(f"{d:>3} {row['early']}/{row['trials']:>10} {row['fraction']:>9.2f}")
    save_json("fig10_dampened", series)
    # Shape assertions: detection probability decreases with D, and few
    # dampened switches rarely block early detection.
    assert series[1]["fraction"] >= series[7]["fraction"]
    assert series[1]["fraction"] >= 0.5
