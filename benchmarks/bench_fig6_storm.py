"""Figure 6 — update storms in the baseline (no-partition) setting.

All rule insertions of every switch burst into the verifier as one
sequence; Flash processes the storm as one block while Delta-net* and
APKeep* grind through it per update (the paper kills them at 10 hours; we
scale the timeout down and report ">timeout" the same way).
"""

from __future__ import annotations

import os

import pytest

from .harness import print_table, run_apkeep, run_deltanet, run_flash, save_results
from .settings import lnet_ecmp, lnet_smr

STORM_TIMEOUT = float(os.environ.get("REPRO_STORM_TIMEOUT", "20"))


@pytest.mark.parametrize("maker", [lnet_ecmp, lnet_smr], ids=lambda m: m.__name__)
def bench_fig6_update_storm(benchmark, maker):
    setting = maker()
    updates = setting.storm_updates()
    rows = []

    def run():
        rows.clear()
        rows.append(run_deltanet(setting, updates, timeout=STORM_TIMEOUT))
        rows.append(run_apkeep(setting, updates, timeout=STORM_TIMEOUT))
        rows.append(run_flash(setting, updates, timeout=STORM_TIMEOUT))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(f"Figure 6 — {setting.name} storm", rows)
    save_results(f"fig6_{setting.name}", rows)

    deltanet, apkeep, flash = rows
    assert flash.finished, "Flash must absorb the storm within the timeout"
    # The paper's qualitative claims: Flash is the fastest of the three and
    # at least as memory-frugal as the losers.
    if apkeep.finished:
        assert flash.seconds <= apkeep.seconds
        assert flash.predicate_ops <= apkeep.predicate_ops
    if deltanet.finished:
        assert flash.predicate_ops <= deltanet.predicate_ops
