"""End-to-end model-update benchmark and regression gate (``BENCH_flash.json``).

Where ``bench_micro.py`` gates raw BDD operation throughput, this harness
gates what the paper actually reports: *model update* time through the
whole Fast IMT stack — map → reduce → apply on a real
:class:`~repro.core.model_manager.ModelWriter` — comparing the
support-pruned single-traversal apply path against the retained reference
cross product (``InverseModel.fast_apply = False``).

Settings
--------
* ``fattree_churn`` — the headline: a fat-tree fabric with its full APSP
  FIB installed, then a long stream of churn blocks, each installing and
  withdrawing bursts of more-specific prefixes with alternate next hops.
  Each block touches a handful of prefixes while the EC table carries
  the accumulated state of every earlier block, so most ECs are disjoint
  from each block's support — exactly the Delta-net-style locality the
  fast path exploits (watch ``mr2.apply.ecs_skipped``).
* ``lnet_block_storm`` — an LNet-like suffix-routing FIB driven in as
  fixed-size update blocks (the paper's Figure-6 storm shape): fewer,
  fatter blocks whose supports are wide, so the win comes mostly from
  the single-traversal ``split`` rather than pruning.
* ``per_update`` — ``block_threshold=1`` with aggregation off (the
  paper's per-update mode).  Single-overwrite blocks can't be pruned,
  so this setting is the honesty guard: the fast path must not regress
  where its optimisations have nothing to bite on.

Methodology
-----------
Reference and fast paths run *interleaved* within each round on CPU time
(``time.process_time``); the reported speedup is the median of per-round
ratios.  The timed region covers churn/storm processing only (the
identical base-FIB install is untimed).  Every round also extracts both
final models into a semantic canonical form — sorted (EC cardinality,
action map) pairs — and asserts they are identical, so each measurement
doubles as an equivalence check.

Usage
-----
    PYTHONPATH=src python benchmarks/bench_e2e.py              # full run
    PYTHONPATH=src python benchmarks/bench_e2e.py --quick      # CI smoke
    PYTHONPATH=src python benchmarks/bench_e2e.py --check      # regression gate

``--check`` compares against the committed ``BENCH_flash.json``: any
setting dropping more than 25% below its baseline speedup fails, and on
full runs ``fattree_churn`` must clear the 1.5x acceptance floor while no
setting may fall below 0.9x (a >10% end-to-end regression).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys
import time
from typing import Dict, List, Sequence, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.model_manager import ModelWriter
from repro.dataplane.rule import Rule
from repro.dataplane.trace import inserts_only
from repro.dataplane.update import RuleUpdate, delete, insert
from repro.fibgen.shortest_path import std_fib
from repro.fibgen.suffix import std_fib_suffix
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.generators import fabric

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_flash.json"
)

#: Per-setting speedup must stay above ``baseline * (1 - TOLERANCE)``.
TOLERANCE = 0.25
#: Acceptance floor for the headline churn setting (full runs).
HEADLINE = "fattree_churn"
HEADLINE_FLOOR = 1.5
#: No setting may regress the end-to-end path by more than 10% (full runs).
ABSOLUTE_FLOOR = 0.9


# ----------------------------------------------------------------------
# Workload construction.  Each setting builds (devices, layout, base
# updates, churn blocks, manager kwargs) once per (seed, mode); both the
# reference and the fast run then replay identical streams.
# ----------------------------------------------------------------------

class Workload:
    def __init__(
        self,
        devices: Sequence[int],
        layout,
        base: Sequence[RuleUpdate],
        blocks: Sequence[Sequence[RuleUpdate]],
        manager_kwargs: Dict[str, object],
    ) -> None:
        self.devices = list(devices)
        self.layout = layout
        self.base = list(base)
        self.blocks = [list(b) for b in blocks]
        self.manager_kwargs = dict(manager_kwargs)

    @property
    def num_updates(self) -> int:
        return sum(len(b) for b in self.blocks)


def _churn_blocks(
    rng: random.Random,
    devices: Sequence[int],
    layout,
    n_blocks: int,
    inserts_per_block: int,
    overlay_cap: int,
) -> List[List[RuleUpdate]]:
    """Install-and-withdraw bursts of more-specific prefixes.

    Each block inserts ``inserts_per_block`` fresh high-priority rules on
    random switches; once more than ``overlay_cap`` overlay rules are
    live, the oldest are withdrawn in the same block — steady-state
    churn over a bounded but sizeable live overlay, which is what keeps
    the EC table large enough to resemble a real network's.
    """
    width = layout.field("dst").width
    installed: List[Tuple[int, Rule]] = []
    blocks: List[List[RuleUpdate]] = []
    for _ in range(n_blocks):
        block: List[RuleUpdate] = []
        for _ in range(inserts_per_block):
            plen = rng.randint(width - 4, width)
            value = rng.getrandbits(width)
            match = Match.dst_prefix(value, plen, layout)
            dev = rng.choice(devices)
            action = rng.choice(devices)
            rule = Rule(10_000 + plen, match, action)
            block.append(insert(dev, rule))
            installed.append((dev, rule))
        while len(installed) > overlay_cap:
            dev, rule = installed.pop(0)
            block.append(delete(dev, rule))
        blocks.append(block)
    return blocks


def _wl_fattree_churn(seed: int, quick: bool) -> Workload:
    rng = random.Random(seed)
    topo = fabric(4, 4, 2, 2)
    layout = dst_only_layout(12)
    base = inserts_only(std_fib(topo, layout))
    devices = topo.switches()
    n_blocks = 10 if quick else 20
    per_block = 16 if quick else 24
    blocks = _churn_blocks(
        rng, devices, layout, n_blocks, per_block, per_block * 16
    )
    return Workload(devices, layout, base, blocks, {})


def _wl_lnet_block_storm(seed: int, quick: bool) -> Workload:
    rng = random.Random(seed)
    topo = fabric(4, 4, 2, 2)
    layout = dst_only_layout(10)
    storm = inserts_only(std_fib_suffix(topo, layout, suffix_bits=2))
    rng.shuffle(storm)
    if quick:
        storm = storm[: len(storm) // 2]
    block_size = 256
    blocks = [
        storm[i: i + block_size] for i in range(0, len(storm), block_size)
    ]
    return Workload(topo.switches(), layout, [], blocks, {})


def _wl_per_update(seed: int, quick: bool) -> Workload:
    rng = random.Random(seed)
    topo = fabric(2, 2, 2, 2)
    layout = dst_only_layout(8)
    base = inserts_only(std_fib(topo, layout))
    devices = topo.switches()
    n_blocks = 40 if quick else 120
    blocks = _churn_blocks(rng, devices, layout, n_blocks, 1, 4)
    return Workload(
        devices,
        layout,
        base,
        blocks,
        {"block_threshold": 1, "aggregate": False},
    )


SETTINGS = {
    HEADLINE: _wl_fattree_churn,
    "lnet_block_storm": _wl_lnet_block_storm,
    "per_update": _wl_per_update,
}


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------

def _canonical_model(manager: ModelWriter) -> List[Tuple[int, str]]:
    """Engine-independent semantic form of the final EC table."""
    rows = []
    for pred, vec in manager.model.entries():
        actions = sorted(manager.store.to_dict(vec).items())
        rows.append((pred.sat_count(), repr(actions)))
    rows.sort()
    return rows


def _run_once(workload: Workload, fast: bool):
    manager = ModelWriter(
        workload.devices, workload.layout, **workload.manager_kwargs
    )
    manager.model.fast_apply = fast
    if workload.base:
        manager.submit(workload.base)
        manager.flush()
    t0 = time.process_time()
    for block in workload.blocks:
        manager.submit(block)
        manager.flush()
    dt = time.process_time() - t0
    return dt, _canonical_model(manager), manager


def bench_setting(
    name: str, seed: int, quick: bool, rounds: int
) -> Dict[str, object]:
    workload = SETTINGS[name](seed, quick)
    ratios: List[float] = []
    ref_times: List[float] = []
    fast_times: List[float] = []
    fast_manager = None
    for _ in range(rounds):
        ref_dt, ref_model, _ = _run_once(workload, fast=False)
        fast_dt, fast_model, fast_manager = _run_once(workload, fast=True)
        if ref_model != fast_model:
            raise AssertionError(
                f"{name}: reference and fast apply paths diverge "
                f"({len(ref_model)} vs {len(fast_model)} ECs)"
            )
        ref_times.append(ref_dt)
        fast_times.append(fast_dt)
        ratios.append(ref_dt / fast_dt if fast_dt else float("inf"))
    registry = fast_manager.telemetry.registry
    registry.collect()
    return {
        "rounds": rounds,
        "devices": len(workload.devices),
        "blocks": len(workload.blocks),
        "updates": workload.num_updates,
        "final_ecs": fast_manager.num_ecs(),
        "ref_seconds_median": statistics.median(ref_times),
        "fast_seconds_median": statistics.median(fast_times),
        "speedup": statistics.median(ratios),
        "ecs_skipped": int(registry.value("mr2.apply.ecs_skipped")),
        "split_calls": int(registry.value("bdd.split.calls")),
        "split_cache_hits": int(registry.value("bdd.split.cache_hits")),
        "apply_seconds": registry.value("span.mr2.apply.seconds"),
        "predicate_ops": fast_manager.engine.metrics.total,
    }


def run_suite(quick: bool, seed: int) -> Dict[str, object]:
    rounds = 3 if quick else 5
    report: Dict[str, object] = {
        "seed": seed,
        "mode": "quick" if quick else "full",
        "python": sys.version.split()[0],
        "settings": {},
    }
    for name in SETTINGS:
        row = bench_setting(name, seed, quick, rounds)
        report["settings"][name] = row
        print(
            f"{name:<18} blocks={row['blocks']:<4} "
            f"updates={row['updates']:<6} ecs={row['final_ecs']:<5} "
            f"ref={row['ref_seconds_median']*1e3:8.1f}ms "
            f"fast={row['fast_seconds_median']*1e3:8.1f}ms "
            f"speedup={row['speedup']:5.2f}x "
            f"skipped={row['ecs_skipped']}"
        )
    return report


def check_against_baseline(
    report: Dict[str, object], baseline_path: str
) -> List[str]:
    """Failures comparing ``report`` against its mode's committed section.

    Like the micro gate, what is gated is the reference/fast ratio
    measured in one process on one machine, so the check transfers
    across runner hardware.  The 1.5x headline floor and the 0.9x
    no-regression floor apply to full-size runs only; quick/CI sizes
    gate relative drift against the quick baseline.
    """
    failures: List[str] = []
    try:
        with open(baseline_path, "r", encoding="utf-8") as f:
            baseline = json.load(f)
    except FileNotFoundError:
        return [f"baseline file not found: {baseline_path}"]
    mode = report["mode"]
    base_section = baseline.get("modes", {}).get(mode)
    if base_section is None:
        return [f"baseline has no {mode!r} section: {baseline_path}"]
    base_settings = base_section.get("settings", {})
    for name, row in report["settings"].items():
        base = base_settings.get(name)
        if base is None:
            continue
        current = row["speedup"]
        floor = base["speedup"] * (1.0 - TOLERANCE)
        if current < floor:
            failures.append(
                f"{name}: speedup {current:.2f}x regressed >25% below "
                f"baseline {base['speedup']:.2f}x (floor {floor:.2f}x)"
            )
    if mode == "full":
        headline = report["settings"].get(HEADLINE)
        if headline and headline["speedup"] < HEADLINE_FLOOR:
            failures.append(
                f"{HEADLINE}: speedup {headline['speedup']:.2f}x is below "
                f"the {HEADLINE_FLOOR:.1f}x acceptance floor"
            )
        for name, row in report["settings"].items():
            if row["speedup"] < ABSOLUTE_FLOOR:
                failures.append(
                    f"{name}: fast path is {row['speedup']:.2f}x — an "
                    f"end-to-end regression beyond the "
                    f"{ABSOLUTE_FLOOR:.1f}x floor"
                )
    return failures


def merge_into_baseline(report: Dict[str, object], path: str) -> None:
    """Write ``report`` under its mode key, preserving the other mode."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            payload = json.load(f)
    except (FileNotFoundError, ValueError):
        payload = {}
    payload.setdefault("schema", "bench_flash/1")
    payload.setdefault("modes", {})[report["mode"]] = report
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument(
        "--output",
        default=None,
        help="merge the JSON report into this baseline file (default: "
        "BENCH_flash.json at the repo root when not in --check mode)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline and exit 1 on >25% "
        "speedup regression (plus 1.5x headline / 0.9x absolute floors "
        "on full runs)",
    )
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    args = parser.parse_args(argv)

    report = run_suite(args.quick, args.seed)

    output = args.output
    if output is None and not args.check:
        output = DEFAULT_BASELINE
    if output:
        merge_into_baseline(report, output)
        print(f"wrote {output}")

    if args.check:
        failures = check_against_baseline(report, args.baseline)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
