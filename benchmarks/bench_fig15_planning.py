"""Figure 15 (Appendix A) — update storms in network planning.

Connecting a new pod to a K-ary fat-tree data center with P prefixes per
pod: the table reports |R| (total rules after the change) and |ΔR|
(modified rules) per (K, P), and we additionally verify the resulting storm
with Flash — the offline validation use case that motivates Fast IMT.
"""

from __future__ import annotations

import pytest

from repro.core.model_manager import ModelWriter
from repro.dataplane.update import insert
from repro.fibgen.planning import pod_addition_scenario

from .harness import save_json

# The paper sweeps K ∈ {4, 8, 16, 32}; pure Python covers the lower rows.
CASES = [(4, 2), (4, 4), (6, 4), (8, 4)]


def bench_fig15_planning_storm(benchmark):
    rows = []

    def run():
        rows.clear()
        for k, p in CASES:
            scenario = pod_addition_scenario(k=k, prefixes_per_pod=p)
            manager = ModelWriter(
                scenario.topology.switches(), scenario.layout
            )
            manager.submit(
                insert(d, r)
                for d, rules in scenario.before.items()
                for r in rules
            )
            manager.flush()
            manager.submit(scenario.updates)
            manager.flush()
            rows.append(
                {
                    "K": k,
                    "P": p,
                    "total_rules": scenario.total_rules_after,
                    "delta_rules": scenario.num_updates,
                    "ecs_after": manager.num_ecs(),
                    "model_seconds": manager.breakdown.total_seconds,
                }
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Figure 15 — pod-addition planning storms ===")
    print(f"{'K':>4} {'P':>4} {'|R|':>9} {'|ΔR|':>8} {'ECs':>6} {'model(s)':>9}")
    for r in rows:
        print(
            f"{r['K']:>4} {r['P']:>4} {r['total_rules']:>9} "
            f"{r['delta_rules']:>8} {r['ecs_after']:>6} "
            f"{r['model_seconds']:>9.3f}"
        )
    save_json("fig15_planning", rows)

    # Shape: |R| and |ΔR| grow with K (the paper's table rows).
    assert rows[-1]["total_rules"] > rows[0]["total_rules"]
    assert rows[-1]["delta_rules"] > rows[0]["delta_rules"]
    # And the storm is absorbed as one block by Fast IMT.
    assert all(r["model_seconds"] < 60 for r in rows)
