"""Figure 9 — CE2D report time under long-tail arrivals (CDF over trials).

Two settings with loops:

* **I2-OpenR/1buggy-loop-lt** — one random switch runs a buggy OpenR
  decision module; one random switch dampens its FIB updates by 60 s;
* **I2-trace-loop-lt** — a crafted loop in the update trace itself, again
  with one dampened switch.

The paper's result: Flash detects the loop consistently in well under a
second for most trials — two orders of magnitude before the 60 s baseline
of waiting for the dampened switch.
"""

from __future__ import annotations

import random
from typing import List, Optional

import pytest

from repro.results import Verdict
from repro.flash import Flash
from repro.headerspace.fields import dst_only_layout
from repro.network.generators import internet2
from repro.routing.openr import OpenRSimulation

from .harness import save_json

LAYOUT = dst_only_layout(8)
TRIALS = 20
DAMPEN_SECONDS = 60.0


def run_openr_buggy_trial(seed: int) -> Optional[float]:
    """One I2-OpenR/1buggy-loop-lt trial; returns the loop report time."""
    topo = internet2()
    rng = random.Random(seed)
    switches = topo.switches()
    buggy = rng.choice(switches)
    dampened = rng.choice([s for s in switches if s != buggy])
    sim = OpenRSimulation(
        topo,
        LAYOUT,
        buggy_nodes=[buggy],
        dampening={dampened: DAMPEN_SECONDS},
        seed=seed,
    )
    flash = Flash(topo, LAYOUT, check_loops=True)
    flash.attach_to(sim)
    sim.bootstrap()
    sim.run()
    loops = [
        r for r in flash.dispatcher.reports if r.verdict is Verdict.VIOLATED
    ]
    return min(r.time for r in loops) if loops else None


def run_trace_trial(seed: int) -> Optional[float]:
    """One I2-trace-loop-lt trial: a loop injected into a correct trace.

    A random victim switch has one rule corrupted to point at a neighbor
    whose own (correct) route for that prefix points back at the victim —
    a deterministic 2-loop.  One random switch is dampened by 60 s.
    """
    topo = internet2()
    rng = random.Random(seed ^ 0xF00D)
    switches = topo.switches()
    sim = OpenRSimulation(topo, LAYOUT, seed=seed)
    sim.bootstrap()
    sim.run()
    batches = list(sim.batches)
    # Find a (victim, dest, neighbor) triple where neighbor routes the dest
    # through the victim; corrupt the victim's rule to point at neighbor.
    candidates = []
    for victim in switches:
        for dest, rule in sim.nodes[victim].fib.items():
            for neighbor in topo.neighbors(victim):
                if topo.device(neighbor).is_external:
                    continue
                back = sim.nodes[neighbor].fib.get(dest)
                if back is not None and back.action == victim:
                    candidates.append((victim, dest, neighbor))
    victim, dest, neighbor = candidates[rng.randrange(len(candidates))]
    dampened = rng.choice([s for s in switches if s != victim])
    corrupted = []
    for b in batches:
        updates = list(b.updates)
        if b.device == victim:
            for i, u in enumerate(updates):
                if u.is_insert and u.rule == sim.nodes[victim].fib[dest]:
                    bad = type(u.rule)(u.rule.priority, u.rule.match, neighbor)
                    updates[i] = type(u)(u.op, u.device, bad, u.epoch)
        corrupted.append((b.device, b.tag, updates))
    flash = Flash(topo, LAYOUT, check_loops=True)
    for i, (device, tag, updates) in enumerate(corrupted):
        when = i * 0.01 + (DAMPEN_SECONDS if device == dampened else 0.0)
        flash.receive(device, tag, updates, now=when)
    loops = [
        r for r in flash.dispatcher.reports if r.verdict is Verdict.VIOLATED
    ]
    return min(r.time for r in loops) if loops else None


EARLY_CUTOFF = 1.0  # seconds; far below the 60 s dampening baseline


def _cdf_summary(times: List[Optional[float]]) -> dict:
    detected = sorted(t for t in times if t is not None)
    early = [t for t in detected if t < EARLY_CUTOFF]
    return {
        "trials": len(times),
        "detected": len(detected),
        "early_detected": len(early),
        "fraction_early": len(early) / len(times) if times else 0.0,
        "times": detected,
        "median_early": early[len(early) // 2] if early else None,
    }


def bench_fig9_ce2d_report_time(benchmark):
    results = {}

    def run():
        results["openr"] = _cdf_summary(
            [run_openr_buggy_trial(seed) for seed in range(TRIALS)]
        )
        results["trace"] = _cdf_summary(
            [run_trace_trial(seed) for seed in range(TRIALS)]
        )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Figure 9 — CE2D report time CDF (long-tail, 60 s dampening) ===")
    for name, summary in results.items():
        label = (
            "I2-OpenR/1buggy-loop-lt" if name == "openr" else "I2-trace-loop-lt"
        )
        print(
            f"{label}: {summary['early_detected']}/{summary['trials']} trials "
            f"detected early (fraction {summary['fraction_early']:.2f}), "
            f"median early time {summary['median_early']}"
        )
    save_json("fig9_cdf", results)
    # Paper shape: a large fraction of trials (68%/100% in the paper) detect
    # the loop far below the 60 s dampening baseline.
    assert results["openr"]["fraction_early"] >= 0.5
    assert results["trace"]["fraction_early"] >= 0.5
    if results["openr"]["median_early"] is not None:
        assert results["openr"]["median_early"] < DAMPEN_SECONDS / 60
