"""§7 extension — parallel subspace verification.

The paper runs one subspace verifier per vCPU (§5.5's 112-vCPU deployment);
this bench reproduces the deployment model in miniature: the same storm
verified by the same per-subspace verifiers, sequentially vs across a
process pool.  Results must agree exactly; the wall-clock ratio is reported
(it favors the pool only once per-subspace work exceeds process start-up,
i.e. at medium/large scales).
"""

from __future__ import annotations

import os

import pytest

from repro.core.parallel import run_partitioned

from .harness import save_json
from .settings import lnet_ecmp

PROCESSES = int(os.environ.get("REPRO_BENCH_PROCESSES", "4"))


def bench_parallel_subspaces(benchmark):
    setting = lnet_ecmp()
    updates = setting.storm_updates()
    result = {}

    def run():
        seq_result = run_partitioned(
            setting.topology.switches(),
            setting.layout,
            setting.partition,
            updates,
            processes=None,
        )
        par_result = run_partitioned(
            setting.topology.switches(),
            setting.layout,
            setting.partition,
            updates,
            processes=PROCESSES,
        )
        sequential, wall_seq, reg_seq = (
            seq_result.stats, seq_result.wall_seconds, seq_result.registry
        )
        parallel, wall_par, reg_par = (
            par_result.stats, par_result.wall_seconds, par_result.registry
        )
        result.update(
            {
                "sequential_wall": wall_seq,
                "parallel_wall": wall_par,
                "workers": PROCESSES,
                "sequential_metrics": reg_seq.snapshot(),
                "parallel_metrics": reg_par.snapshot(),
                "subspaces": [
                    {
                        "name": s.subspace,
                        "seq_seconds": s.seconds,
                        "par_seconds": p.seconds,
                        "ecs": s.ecs,
                    }
                    for s, p in zip(sequential, parallel)
                ],
                "agree": all(
                    s.ecs == p.ecs and s.predicate_ops == p.predicate_ops
                    for s, p in zip(sequential, parallel)
                ),
            }
        )
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== §7 — parallel subspace verification ===")
    print(
        f"sequential {result['sequential_wall']:.3f}s vs "
        f"{result['workers']} workers {result['parallel_wall']:.3f}s "
        f"(speedup {result['sequential_wall'] / result['parallel_wall']:.2f}x; "
        "start-up dominates at small scale)"
    )
    for row in result["subspaces"]:
        print(
            f"  {row['name']:<8} seq {row['seq_seconds']:.3f}s  "
            f"par {row['par_seconds']:.3f}s  ECs {row['ecs']}"
        )
    save_json("parallel_subspaces", result)
    assert result["agree"], "parallel and sequential verifiers must agree"
