"""Figure 14 (Appendix A) — cumulative distribution of updates on link events.

The appendix scenario: a small network receives many prefixes from two
external ASes; an inter-domain link failure triggers a burst of FIB updates
from the border router, and an intra-domain link recovery triggers another
burst.  We reproduce it with the OpenR simulator on a 3-node triangle with
many destination prefixes and report the cumulative update counts around
each event — the paper's "10K burst updates within ~0.5 s" shape.
"""

from __future__ import annotations

import pytest

from repro.headerspace.fields import dst_only_layout
from repro.network.topology import Topology
from repro.routing.openr import OpenRSimulation, PrefixOwner

from .harness import save_json

PREFIXES = 256  # the paper's 10K, scaled


def build_scenario():
    topo = Topology("fig13")
    a = topo.add_device("A")
    b = topo.add_device("B")
    c = topo.add_device("C")
    topo.add_link(a, b)
    topo.add_link(a, c)
    topo.add_link(b, c)
    layout = dst_only_layout(12)
    # All prefixes are owned by A (the border router toward the Internet):
    # its failure forces every other router to re-route every prefix.
    plen = max(1, (PREFIXES - 1).bit_length())
    width = layout.field("dst").width
    destinations = [
        PrefixOwner(owner=a, value=i << (width - plen), length=plen)
        for i in range(PREFIXES)
    ]
    return topo, layout, destinations, (a, b, c)


def bench_fig14_update_storm_cdf(benchmark):
    timeline = {}

    def run():
        topo, layout, destinations, (a, b, c) = build_scenario()
        sim = OpenRSimulation(topo, layout, destinations=destinations, seed=14)
        sim.bootstrap()
        sim.run()
        t0 = sim.loop.now
        # Event 1: the A-B link fails (B reroutes all prefixes via C).
        sim.fail_link(a, b, at=t0 + 1.0)
        sim.run()
        t1 = sim.loop.now
        # Event 2: the link recovers (B reroutes everything back).
        sim.recover_link(a, b, at=t1 + 1.0)
        sim.run()
        events = [
            {"time": b_.time, "device": topo.name_of(b_.device),
             "updates": len(b_.updates)}
            for b_ in sim.batches
        ]
        timeline["events"] = events
        timeline["event1_start"] = t0 + 1.0
        timeline["event2_start"] = t1 + 1.0
        return timeline

    benchmark.pedantic(run, rounds=1, iterations=1)
    events = timeline["events"]
    print("\n=== Figure 14 — cumulative updates around link events ===")
    cumulative = 0
    for e in events:
        cumulative += e["updates"]
        if e["updates"]:
            print(
                f"t={e['time']:>8.3f}s  +{e['updates']:>5} updates "
                f"from {e['device']}  (cumulative {cumulative})"
            )
    save_json("fig14_storm_cdf", timeline)

    # Shape: each event triggers a burst comparable to the prefix count,
    # and each burst completes within a sub-second window of its event.
    for start in (timeline["event1_start"], timeline["event2_start"]):
        burst = [
            e for e in events if start <= e["time"] <= start + 0.5 and e["updates"]
        ]
        total = sum(e["updates"] for e in burst)
        assert total >= PREFIXES, f"expected a burst after t={start}"
