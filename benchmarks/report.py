"""Assemble a consolidated report from benchmarks/results/*.json.

Run after ``pytest benchmarks/ --benchmark-only``:

    python -m benchmarks.report

Prints one summary per experiment plus the headline paper-shape checks,
and exits non-zero if any expected result file is missing.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List, Optional

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

EXPECTED = [
    "table3_LNet-apsp", "table3_LNet-ecmp", "table3_LNet-smr",
    "table3_Airtel-trace", "table3_Stanford-trace", "table3_I2-trace",
    "fig6_LNet-ecmp", "fig6_LNet-smr",
    "fig8_timeline", "fig9_cdf", "fig10_dampened",
    "fig11_breakdown", "fig12_fig18_dgq", "fig14_storm_cdf",
    "fig15_planning", "cost_model",
]


def load(name: str) -> Optional[object]:
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def fmt_rows(rows: List[Dict]) -> str:
    parts = []
    for r in rows:
        time = f">{r['seconds']:.0f}s" if r["timed_out"] else f"{r['seconds']:.2f}s"
        parts.append(f"{r['system']}={time}/{r['predicate_ops']}ops")
    return "  ".join(parts)


def main() -> int:
    missing = [name for name in EXPECTED if load(name) is None]
    print("=" * 72)
    print("Flash reproduction — consolidated benchmark report")
    print("=" * 72)

    print("\n## Table 3 / Figure 6 (time / #ops)")
    for name in EXPECTED:
        if not name.startswith(("table3", "fig6")):
            continue
        rows = load(name)
        if rows:
            print(f"  {name:<24} {fmt_rows(rows)}")

    fig8 = load("fig8_timeline")
    if fig8:
        print("\n## Figure 8 (consistency)")
        print(
            f"  PUV transient loops: {len(fig8['puv_violations'])}, "
            f"BUV: {len(fig8['buv_violations'])}, "
            f"CE2D: {len(fig8['ce2d_violations'])} (must be 0)"
        )

    fig9 = load("fig9_cdf")
    if fig9:
        print("\n## Figure 9 (early detection under long tails)")
        for key, label in (("openr", "I2-OpenR/1buggy"), ("trace", "I2-trace")):
            s = fig9[key]
            print(
                f"  {label:<18} {s['early_detected']}/{s['trials']} early "
                f"(median {s['median_early']})"
            )

    fig10 = load("fig10_dampened")
    if fig10:
        series = ", ".join(
            f"D={d}:{row['fraction']:.2f}" for d, row in fig10.items()
        )
        print(f"\n## Figure 10 (dampened switches)\n  {series}")

    fig12 = load("fig12_fig18_dgq")
    if fig12:
        print("\n## Figures 12/18 (DGQ vs MT, ms)")
        print(
            f"  DGQ p99 {fig12['dgq']['p99_ms']:.3f} vs "
            f"MT p99 {fig12['mt']['p99_ms']:.3f} "
            f"({fig12['mt']['p99_ms'] / fig12['dgq']['p99_ms']:.1f}x)"
        )

    cost = load("cost_model")
    if cost:
        paper = cost["paper-extrapolated"]
        print("\n## §5.5 cost model")
        print(
            f"  paper-extrapolated: {paper['instances']} instances, "
            f"${paper['dedicated_usd_per_hour']:.2f}/h"
        )

    if missing:
        print(f"\nMISSING results ({len(missing)}): {missing}")
        print("run: python -m pytest benchmarks/ --benchmark-only")
        return 1
    print("\nall expected results present.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
