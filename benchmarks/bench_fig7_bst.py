"""Figure 7 — effect of the block size threshold (BST) on update speed.

For each setting we sweep BST/FIB-scale ratios and report the normalised
update speed T_baseline / T_x, where the baseline processes all updates as
one block (BST = ∞).  The paper's findings: speed rises with BST and most
settings reach ≥60% of baseline speed at x ≈ 0.04.
"""

from __future__ import annotations

import pytest

from .harness import run_flash, save_json
from .settings import (
    airtel_trace,
    i2_trace,
    lnet_apsp,
    lnet_ecmp,
    lnet_smr,
    stanford_trace,
)

RATIOS = [0.005, 0.01, 0.02, 0.04, 0.1, 0.25, 0.5, 1.0]

_SETTINGS = [lnet_apsp, lnet_ecmp, lnet_smr, airtel_trace, stanford_trace, i2_trace]


@pytest.mark.parametrize("maker", _SETTINGS, ids=lambda m: m.__name__)
def bench_fig7_block_size_threshold(benchmark, maker):
    setting = maker()
    updates = setting.storm_updates()
    fib_scale = setting.fib_scale
    series = {}

    def run():
        series.clear()
        baseline = run_flash(setting, updates, block_threshold=None)
        series["baseline_seconds"] = baseline.seconds
        points = []
        for ratio in RATIOS:
            threshold = max(1, int(ratio * fib_scale))
            result = run_flash(setting, updates, block_threshold=threshold)
            speed = baseline.seconds / result.seconds if result.seconds else 0.0
            points.append(
                {
                    "ratio": ratio,
                    "threshold": threshold,
                    "seconds": result.seconds,
                    "normalized_speed": speed,
                }
            )
        series["points"] = points
        return series

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n=== Figure 7 — {setting.name} (FIB scale {fib_scale}) ===")
    print(f"{'BST/FIB':>9} {'BST':>7} {'time(s)':>9} {'norm speed':>11}")
    for p in series["points"]:
        print(
            f"{p['ratio']:>9.3f} {p['threshold']:>7} "
            f"{p['seconds']:>9.3f} {p['normalized_speed']:>11.2f}"
        )
    save_json(f"fig7_{setting.name}", series)

    speeds = [p["normalized_speed"] for p in series["points"]]
    # Monotone-ish trend: the largest block is at least as fast as the
    # smallest threshold (per-update-ish) run.
    assert speeds[-1] >= speeds[0] * 0.5
