"""Shared benchmark runners: one verifier, one update stream, one report.

Every Table-3/Figure-6 style bench funnels through :func:`run_verifier`,
which enforces a cooperative wall-clock timeout (the paper killed the JVM
after 10 hours; we scale that down) and collects the three Table-3 columns:
model update time, memory estimate and #predicate operations.

All timing flows through :mod:`repro.telemetry`: each run drives the
update stream inside a ``bench.drive`` span and reads wall-clock seconds
and operation counts back out of the run's metrics registry, so a bench
row and a ``--telemetry`` JSONL export can never disagree.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.apkeep import APKeepVerifier
from repro.baselines.deltanet import DeltaNetVerifier
from repro.core.model_manager import ModelWriter
from repro.core.subspace import SubspacePartition
from repro.dataplane.update import RuleUpdate
from repro.telemetry import OpMetrics, Telemetry

from .settings import Setting

DEFAULT_TIMEOUT = float(os.environ.get("REPRO_BENCH_TIMEOUT", "60"))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Registry counter written by the ``bench.drive`` span in :func:`_drive`.
DRIVE_SECONDS = "span.bench.drive.seconds"


@dataclass
class RunResult:
    """One verifier run's Table-3 row fragment."""

    system: str
    setting: str
    seconds: float
    predicate_ops: int
    memory_bytes: int
    ecs: int
    updates_processed: int
    updates_total: int
    timed_out: bool = False
    metrics: Optional[Dict[str, object]] = None

    @property
    def finished(self) -> bool:
        return not self.timed_out

    def display_time(self) -> str:
        if self.timed_out:
            return f">{self.seconds:.0f}"
        return f"{self.seconds:.2f}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "system": self.system,
            "setting": self.setting,
            "seconds": self.seconds,
            "predicate_ops": self.predicate_ops,
            "memory_bytes": self.memory_bytes,
            "ecs": self.ecs,
            "updates_processed": self.updates_processed,
            "updates_total": self.updates_total,
            "timed_out": self.timed_out,
            "metrics": self.metrics,
        }


def run_flash(
    setting: Setting,
    updates: Sequence[RuleUpdate],
    block_threshold: Optional[int] = None,
    timeout: float = DEFAULT_TIMEOUT,
    aggregate: bool = True,
) -> RunResult:
    """Run the Fast IMT model manager over one subspace-less stream."""
    telemetry = Telemetry()
    manager = ModelWriter(
        setting.topology.switches(),
        setting.layout,
        block_threshold=block_threshold,
        aggregate=aggregate,
        telemetry=telemetry,
    )

    def feed(chunk: Sequence[RuleUpdate]) -> None:
        manager.submit(chunk)

    def finish() -> None:
        manager.flush()

    processed, seconds, timed_out = _drive(telemetry, updates, feed, finish, timeout)
    return RunResult(
        system="Flash",
        setting=setting.name,
        seconds=seconds,
        predicate_ops=manager.engine.metrics.total,
        memory_bytes=manager.memory_estimate_bytes(),
        ecs=manager.num_ecs(),
        updates_processed=processed,
        updates_total=len(updates),
        timed_out=timed_out,
        metrics=telemetry.registry.snapshot(),
    )


def run_flash_partitioned(
    setting: Setting,
    updates: Sequence[RuleUpdate],
    block_threshold: Optional[int] = None,
    timeout: float = DEFAULT_TIMEOUT,
) -> RunResult:
    """Flash with the §3.4 input-space partition (one manager per subspace).

    Reported time is the summed single-core time; memory and ops are summed
    across subspaces.  All managers share one registry, so op counters
    aggregate automatically.
    """
    assert setting.partition is not None, f"{setting.name} has no partition"
    routed = setting.partition.route_updates(updates)
    telemetry = Telemetry()
    managers: Dict[int, ModelWriter] = {}
    for subspace in setting.partition:
        managers[subspace.index] = ModelWriter(
            setting.topology.switches(),
            setting.layout,
            block_threshold=block_threshold,
            subspace_match=subspace.match,
            telemetry=telemetry,
        )
    timed_out = False
    processed = 0
    with telemetry.span("bench.drive") as span:
        for subspace in setting.partition:
            manager = managers[subspace.index]
            stream = routed[subspace.index]
            for chunk_start in range(0, len(stream), 256):
                manager.submit(stream[chunk_start : chunk_start + 256])
                processed += min(256, len(stream) - chunk_start)
                if span.elapsed > timeout:
                    timed_out = True
                    break
            manager.flush()
            if timed_out:
                break
    seconds = telemetry.registry.value(DRIVE_SECONDS)
    return RunResult(
        system="Flash",
        setting=f"{setting.name} Subspace",
        seconds=seconds if not timed_out else timeout,
        predicate_ops=OpMetrics(telemetry.registry).total,
        memory_bytes=sum(m.memory_estimate_bytes() for m in managers.values()),
        ecs=sum(m.num_ecs() for m in managers.values()),
        updates_processed=processed,
        updates_total=sum(len(v) for v in routed.values()),
        timed_out=timed_out,
        metrics=telemetry.registry.snapshot(),
    )


def run_apkeep(
    setting: Setting,
    updates: Sequence[RuleUpdate],
    timeout: float = DEFAULT_TIMEOUT,
    subspace=None,
) -> RunResult:
    telemetry = Telemetry()
    verifier = APKeepVerifier(
        setting.topology.switches(), setting.layout, registry=telemetry.registry
    )
    if subspace is not None:
        universe = verifier.compiler.compile(subspace.match)
        verifier.universe = universe
        vector = verifier._ecs[0][0]
        verifier._ecs = [(vector, universe)]
        for device in verifier.devices:
            verifier._ppm[device] = {verifier.default_action: universe}

    def feed(chunk: Sequence[RuleUpdate]) -> None:
        verifier.process_updates(chunk)

    processed, seconds, timed_out = _drive(telemetry, updates, feed, None, timeout)
    return RunResult(
        system="APKeep*",
        setting=setting.name,
        seconds=seconds,
        predicate_ops=verifier.metrics.total,
        memory_bytes=verifier.memory_estimate_bytes()
        + verifier.engine.memory_estimate_bytes(),
        ecs=verifier.num_ecs(),
        updates_processed=processed,
        updates_total=len(updates),
        timed_out=timed_out,
        metrics=telemetry.registry.snapshot(),
    )


def run_apkeep_partitioned(
    setting: Setting,
    updates: Sequence[RuleUpdate],
    timeout: float = DEFAULT_TIMEOUT,
) -> RunResult:
    assert setting.partition is not None
    routed = setting.partition.route_updates(updates)
    total = RunResult("APKeep*", f"{setting.name} Subspace", 0.0, 0, 0, 0, 0, 0)
    budget = timeout
    for subspace in setting.partition:
        stream = routed[subspace.index]
        result = run_apkeep(setting, stream, timeout=budget, subspace=subspace)
        total.seconds += result.seconds
        total.predicate_ops += result.predicate_ops
        total.memory_bytes += result.memory_bytes
        total.ecs += result.ecs
        total.updates_processed += result.updates_processed
        total.updates_total += result.updates_total
        budget -= result.seconds
        if result.timed_out or budget <= 0:
            total.timed_out = True
            break
    return total


def run_deltanet(
    setting: Setting,
    updates: Sequence[RuleUpdate],
    timeout: float = DEFAULT_TIMEOUT,
) -> RunResult:
    telemetry = Telemetry()
    verifier = DeltaNetVerifier(
        setting.topology.switches(), setting.layout, registry=telemetry.registry
    )

    def feed(chunk: Sequence[RuleUpdate]) -> None:
        verifier.process_updates(chunk)

    processed, seconds, timed_out = _drive(telemetry, updates, feed, None, timeout)
    return RunResult(
        system="Delta-net*",
        setting=setting.name,
        seconds=seconds,
        predicate_ops=verifier.metrics.extra.get("atom_ops", 0),
        memory_bytes=verifier.memory_estimate_bytes(),
        ecs=verifier.num_atoms,
        updates_processed=processed,
        updates_total=len(updates),
        timed_out=timed_out,
        metrics=telemetry.registry.snapshot(),
    )


def _drive(
    telemetry: Telemetry,
    updates: Sequence[RuleUpdate],
    feed: Callable[[Sequence[RuleUpdate]], None],
    finish: Optional[Callable[[], None]],
    timeout: float,
    chunk_size: int = 128,
) -> Tuple[int, float, bool]:
    """Feed ``updates`` in chunks inside a ``bench.drive`` span.

    Returns (processed, seconds, timed_out); seconds is read back from the
    registry so callers and exporters see the same number.
    """
    processed = 0
    timed_out = False
    with telemetry.span("bench.drive") as span:
        for chunk_start in range(0, len(updates), chunk_size):
            chunk = updates[chunk_start : chunk_start + chunk_size]
            feed(chunk)
            processed += len(chunk)
            if span.elapsed > timeout:
                timed_out = processed < len(updates)
                break
        if finish is not None and not timed_out:
            finish()
    return processed, telemetry.registry.value(DRIVE_SECONDS), timed_out


# ----------------------------------------------------------------------
# Reporting helpers
# ----------------------------------------------------------------------

def print_table(title: str, rows: Sequence[RunResult]) -> None:
    print(f"\n=== {title} ===")
    header = (
        f"{'setting':<24} {'system':<12} {'time(s)':>9} {'#ops':>12} "
        f"{'mem(MB)':>9} {'ECs/atoms':>10} {'updates':>12}"
    )
    print(header)
    print("-" * len(header))
    for r in rows:
        progress = f"{r.updates_processed}/{r.updates_total}"
        print(
            f"{r.setting:<24} {r.system:<12} {r.display_time():>9} "
            f"{r.predicate_ops:>12} {r.memory_bytes / 1e6:>9.1f} "
            f"{r.ecs:>10} {progress:>12}"
        )


def save_results(name: str, rows: Sequence[RunResult]) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump([r.as_dict() for r in rows], f, indent=2)
    return path


def save_json(name: str, payload: object) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
    return path
