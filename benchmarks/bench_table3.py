"""Table 3 — overall performance of Delta-net*, APKeep* and Flash.

Reproduces the three column groups for all six settings: total model update
time, memory usage, and #predicate operations.  LNet settings run with the
subspace partition (the "... Subspace" rows); trace settings run flat.

Run: ``pytest benchmarks/bench_table3.py --benchmark-only -s``
"""

from __future__ import annotations

import pytest

from .harness import (
    DEFAULT_TIMEOUT,
    print_table,
    run_apkeep,
    run_apkeep_partitioned,
    run_deltanet,
    run_flash,
    run_flash_partitioned,
    save_results,
)
from .settings import (
    airtel_trace,
    i2_trace,
    lnet_apsp,
    lnet_ecmp,
    lnet_smr,
    stanford_trace,
)

_LNET = [lnet_apsp, lnet_ecmp, lnet_smr]
_TRACES = [airtel_trace, stanford_trace, i2_trace]


@pytest.mark.parametrize("maker", _LNET, ids=lambda m: m.__name__)
def bench_table3_lnet_subspace(benchmark, maker):
    setting = maker()
    updates = setting.trace_updates()
    # Flash flushes at the Figure-7 sweet spot (~4% of the FIB scale) so
    # the insert-then-delete trace is processed incrementally rather than
    # annihilated by cancelling-update removal in one giant block.
    threshold = max(1, setting.fib_scale // 25)
    rows = []

    def run():
        rows.clear()
        rows.append(run_deltanet(setting, updates))
        rows.append(run_apkeep_partitioned(setting, updates))
        rows.append(run_flash_partitioned(setting, updates, block_threshold=threshold))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows[0].setting = f"{setting.name} Subspace"  # Delta-net* runs flat but
    # is reported in the same row group as the paper does.
    print_table(f"Table 3 — {setting.name} Subspace", rows)
    save_results(f"table3_{setting.name}", rows)
    flash = rows[-1]
    assert flash.finished, "Flash must finish within the bench timeout"


@pytest.mark.parametrize("maker", _TRACES, ids=lambda m: m.__name__)
def bench_table3_traces(benchmark, maker):
    setting = maker()
    updates = setting.trace_updates()
    threshold = max(1, setting.fib_scale // 25)
    rows = []

    def run():
        rows.clear()
        rows.append(run_deltanet(setting, updates))
        rows.append(run_apkeep(setting, updates))
        rows.append(run_flash(setting, updates, block_threshold=threshold))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(f"Table 3 — {setting.name}", rows)
    save_results(f"table3_{setting.name}", rows)
    flash = rows[-1]
    apkeep = rows[1]
    assert flash.finished
    if apkeep.finished and flash.predicate_ops:
        ratio = apkeep.predicate_ops / max(1, flash.predicate_ops)
        print(f"APKeep*/Flash predicate-op ratio: {ratio:.1f}x")
