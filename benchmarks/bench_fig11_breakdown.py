"""Figure 11 — time breakdown of model construction (I2-trace).

Three systems over the same update stream:

* APKeep* — per-update processing (its per-update change computation is the
  Map-phase analogue; applying moves is its Apply);
* Flash (per-update mode) — block size 1, no aggregation;
* Flash — full MR2 with Reduce I/II.

The paper's finding: aggregation adds a small Reduce cost but slashes both
the Map (computing atomic overwrites) and Apply (cross product) phases.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.apkeep import APKeepVerifier
from repro.core.model_manager import ModelWriter

from .harness import save_json
from .settings import i2_trace


def _run_flash(setting, updates, per_update: bool):
    manager = ModelWriter(
        setting.topology.switches(),
        setting.layout,
        block_threshold=1 if per_update else None,
        aggregate=not per_update,
    )
    manager.submit(updates)
    manager.flush()
    b = manager.breakdown
    return {
        "map_seconds": b.map_seconds,
        "reduce_seconds": b.reduce_seconds,
        "apply_seconds": b.apply_seconds,
        "atomic_overwrites": b.atomic_overwrites,
        "aggregated_overwrites": b.aggregated_overwrites,
    }


def _run_apkeep(setting, updates):
    verifier = APKeepVerifier(setting.topology.switches(), setting.layout)
    start = time.perf_counter()
    verifier.process_updates(updates)
    total = time.perf_counter() - start
    # APKeep* has no reduce phase; its total splits between change
    # computation and EC patching, which we report as one bar pair.
    return {"total_seconds": total}


def bench_fig11_breakdown(benchmark):
    setting = i2_trace()
    # Figure 11 uses the insertion storm (model construction).
    updates = setting.storm_updates()
    results = {}

    def run():
        results["apkeep"] = _run_apkeep(setting, updates)
        results["flash_per_update"] = _run_flash(setting, updates, per_update=True)
        results["flash"] = _run_flash(setting, updates, per_update=False)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    f = results["flash"]
    p = results["flash_per_update"]
    print("\n=== Figure 11 — model construction breakdown (I2-trace) ===")
    print(f"{'phase':<28} {'Flash(per-update)':>18} {'Flash':>10}")
    for phase in ("map_seconds", "reduce_seconds", "apply_seconds"):
        print(f"{phase:<28} {p[phase]:>18.4f} {f[phase]:>10.4f}")
    print(
        f"{'atomic overwrites':<28} {p['atomic_overwrites']:>18} "
        f"{f['atomic_overwrites']:>10}"
    )
    print(
        f"{'aggregated overwrites':<28} {p['aggregated_overwrites']:>18} "
        f"{f['aggregated_overwrites']:>10}"
    )
    print(f"APKeep* total: {results['apkeep']['total_seconds']:.4f}s")
    save_json("fig11_breakdown", results)

    # Paper shape: aggregation shrinks the applied overwrite count hugely,
    # and full Flash applies faster than per-update mode.
    assert f["aggregated_overwrites"] < f["atomic_overwrites"]
    assert f["apply_seconds"] < p["apply_seconds"]
    assert f["map_seconds"] <= p["map_seconds"] * 1.5
