"""Fleet resilience overhead — crash recovery vs a crash-free storm.

The persistent worker fleet (``repro.fleet``) buys §5.5-style
parallelism *plus* fault tolerance: workers checkpoint their shard
model (FSJ1 snapshot + applied-block journal) every few blocks, and a
killed worker restores the snapshot and replays only the journaled
tail.  This bench prices that promise: the same storm is verified by

* a crash-free fleet run (the recovery machinery armed but idle), and
* a run where one worker is killed mid-storm and must recover.

Both must agree exactly with the sequential baseline, and the crashed
run must finish within ``2x`` of the crash-free run — recovery from a
checkpoint must not degenerate into re-running the whole batch.
"""

from __future__ import annotations

import os

from repro.core.parallel import run_partitioned
from repro.resilience import RetryPolicy

from .harness import save_json
from .settings import lnet_ecmp

PROCESSES = int(os.environ.get("REPRO_BENCH_PROCESSES", "4"))
BLOCK_SIZE = int(os.environ.get("REPRO_BENCH_FLEET_BLOCK", "64"))
CRASH_RATIO_BOUND = 2.0

#: Tight watchdog so the injected death is noticed promptly; generous
#: enough that slow CI machines don't trip it on healthy workers.
RETRY = RetryPolicy(
    max_retries=1,
    backoff_seconds=0.02,
    task_timeout=30.0,
    jitter=0.1,
    max_respawns=2,
    ack_resends=1,
)


def _fleet_run(setting, updates, faults=None):
    return run_partitioned(
        setting.topology.switches(),
        setting.layout,
        setting.partition,
        updates,
        processes=PROCESSES,
        retry=RETRY,
        faults=faults,
        block_size=BLOCK_SIZE,
        checkpoint_every=2,
        heartbeat_interval=0.05,
    )


def bench_fleet_crash_recovery(benchmark):
    setting = lnet_ecmp()
    updates = setting.storm_updates()
    victim = setting.partition.subspaces[0].name
    # Die once, mid-shard: after two checkpointed block pairs, so the
    # respawned worker restores a snapshot and replays a short tail
    # instead of the whole storm.
    faults = {victim: "kill@1#5"}
    result = {}

    def run():
        baseline = run_partitioned(
            setting.topology.switches(),
            setting.layout,
            setting.partition,
            updates,
            processes=None,
        )
        clean = _fleet_run(setting, updates)
        crashed = _fleet_run(setting, updates, faults=faults)
        reg = crashed.registry
        by_name = lambda r: {s.subspace: s for s in r.stats}  # noqa: E731
        base_stats = by_name(baseline)
        agree = all(
            by_name(r)[n].ecs == base_stats[n].ecs
            and by_name(r)[n].updates == base_stats[n].updates
            for r in (clean, crashed)
            for n in base_stats
        )
        result.update(
            {
                "setting": setting.name,
                "updates": len(updates),
                "workers": PROCESSES,
                "block_size": BLOCK_SIZE,
                "victim": victim,
                "sequential_wall": baseline.wall_seconds,
                "clean_wall": clean.wall_seconds,
                "crashed_wall": crashed.wall_seconds,
                "crash_ratio": crashed.wall_seconds / clean.wall_seconds,
                "workers_lost": reg.value("fleet.workers.lost"),
                "respawns": reg.value("fleet.respawns"),
                "blocks_replayed": reg.value("fleet.blocks.replayed"),
                "blocks_dispatched": reg.value("fleet.blocks.dispatched"),
                "checkpoints": reg.value("fleet.checkpoints"),
                "degraded": reg.value("fleet.degraded"),
                "recovered_failures": sum(
                    1 for f in crashed.failures if f.recovered
                ),
                "agree": agree,
            }
        )
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== fleet crash recovery overhead ===")
    print(
        f"{result['setting']}: {result['updates']} updates over "
        f"{result['workers']} workers (blocks of {result['block_size']})"
    )
    print(
        f"sequential {result['sequential_wall']:.3f}s | fleet clean "
        f"{result['clean_wall']:.3f}s | fleet crashed "
        f"{result['crashed_wall']:.3f}s "
        f"(ratio {result['crash_ratio']:.2f}x)"
    )
    print(
        f"kill of {result['victim']!r}: {result['respawns']:.0f} respawn(s), "
        f"{result['blocks_replayed']:.0f} of "
        f"{result['blocks_dispatched']:.0f} blocks replayed from the "
        f"journal tail, {result['checkpoints']:.0f} checkpoints"
    )
    save_json("fleet_crash_recovery", result)
    assert result["agree"], "fleet runs must agree with the sequential run"
    assert result["workers_lost"] >= 1, "the injected kill must land"
    assert result["degraded"] == 0, "recovery must not fall back"
    assert result["crash_ratio"] < CRASH_RATIO_BOUND, (
        f"crash recovery cost {result['crash_ratio']:.2f}x, "
        f"bound {CRASH_RATIO_BOUND}x"
    )
