"""Fleet resilience and shipping-cost benchmarks.

Two suites share this file:

**Crash recovery** (``bench_fleet_crash_recovery``, pytest-benchmark):
the persistent worker fleet (``repro.fleet``) buys §5.5-style
parallelism *plus* fault tolerance: workers checkpoint their shard
model (FSJ1 snapshot + applied-block journal) every few blocks, and a
killed worker restores the snapshot and replays only the journaled
tail.  The same storm is verified by a crash-free fleet run and a run
where one worker is killed mid-storm; both must agree exactly with the
sequential baseline, and the crashed run must finish within ``2x`` of
the crash-free run.

**Skewed storm** (``run_skewed_storm``, ``__main__`` with
``--quick --check --output``): prices the FBW2 delta-shipping tentpole
under update skew — ~90% of the stream lands in one hot shard.  Three
fleet configurations verify the identical stream:

* ``full_frame``   — ``compact_every=1``: every checkpoint ships a full
  FBW1 table (the historical wire cost);
* ``delta``        — ``compact_every=8``: checkpoints between
  compactions ship FBW2 deltas + journal diffs;
* ``delta_rebalance`` — deltas plus the skew-aware
  :class:`~repro.fleet.RebalancePolicy`: the hot shard splits at a
  block boundary and half of it migrates — as the delta chain — to the
  least-loaded worker.

All three must match the sequential baseline model-for-model.  The
gated quantity is hardware-transferable: bytes shipped over the
supervisor queues (``fleet.checkpoint.bytes`` + ``fleet.ship.bytes``)
must drop >= ``BYTES_REDUCTION_FLOOR``x from ``full_frame`` to
``delta``.  Wall-clock ratios are reported (and asserted only in full
mode, where the workload is big enough to be stable).

Usage
-----
    PYTHONPATH=src python benchmarks/bench_fleet.py              # full
    PYTHONPATH=src python benchmarks/bench_fleet.py --quick      # CI smoke
    PYTHONPATH=src python benchmarks/bench_fleet.py --check      # gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.parallel import run_partitioned
from repro.fleet import RebalancePolicy
from repro.resilience import RetryPolicy

try:
    from .harness import save_json
    from .settings import lnet_ecmp
except ImportError:  # executed as a script: python benchmarks/bench_fleet.py
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks.harness import save_json
    from benchmarks.settings import lnet_ecmp

PROCESSES = int(os.environ.get("REPRO_BENCH_PROCESSES", "4"))
BLOCK_SIZE = int(os.environ.get("REPRO_BENCH_FLEET_BLOCK", "64"))
CRASH_RATIO_BOUND = 2.0

#: Tight watchdog so the injected death is noticed promptly; generous
#: enough that slow CI machines don't trip it on healthy workers.
RETRY = RetryPolicy(
    max_retries=1,
    backoff_seconds=0.02,
    task_timeout=30.0,
    jitter=0.1,
    max_respawns=2,
    ack_resends=1,
)


def _fleet_run(setting, updates, faults=None):
    return run_partitioned(
        setting.topology.switches(),
        setting.layout,
        setting.partition,
        updates,
        processes=PROCESSES,
        retry=RETRY,
        faults=faults,
        block_size=BLOCK_SIZE,
        checkpoint_every=2,
        heartbeat_interval=0.05,
    )


def bench_fleet_crash_recovery(benchmark):
    setting = lnet_ecmp()
    updates = setting.storm_updates()
    victim = setting.partition.subspaces[0].name
    # Die once, mid-shard: after two checkpointed block pairs, so the
    # respawned worker restores a snapshot and replays a short tail
    # instead of the whole storm.
    faults = {victim: "kill@1#5"}
    result = {}

    def run():
        baseline = run_partitioned(
            setting.topology.switches(),
            setting.layout,
            setting.partition,
            updates,
            processes=None,
        )
        clean = _fleet_run(setting, updates)
        crashed = _fleet_run(setting, updates, faults=faults)
        reg = crashed.registry
        by_name = lambda r: {s.subspace: s for s in r.stats}  # noqa: E731
        base_stats = by_name(baseline)
        agree = all(
            by_name(r)[n].ecs == base_stats[n].ecs
            and by_name(r)[n].updates == base_stats[n].updates
            for r in (clean, crashed)
            for n in base_stats
        )
        result.update(
            {
                "setting": setting.name,
                "updates": len(updates),
                "workers": PROCESSES,
                "block_size": BLOCK_SIZE,
                "victim": victim,
                "sequential_wall": baseline.wall_seconds,
                "clean_wall": clean.wall_seconds,
                "crashed_wall": crashed.wall_seconds,
                "crash_ratio": crashed.wall_seconds / clean.wall_seconds,
                "workers_lost": reg.value("fleet.workers.lost"),
                "respawns": reg.value("fleet.respawns"),
                "blocks_replayed": reg.value("fleet.blocks.replayed"),
                "blocks_dispatched": reg.value("fleet.blocks.dispatched"),
                "checkpoints": reg.value("fleet.checkpoints"),
                "degraded": reg.value("fleet.degraded"),
                "recovered_failures": sum(
                    1 for f in crashed.failures if f.recovered
                ),
                "agree": agree,
            }
        )
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== fleet crash recovery overhead ===")
    print(
        f"{result['setting']}: {result['updates']} updates over "
        f"{result['workers']} workers (blocks of {result['block_size']})"
    )
    print(
        f"sequential {result['sequential_wall']:.3f}s | fleet clean "
        f"{result['clean_wall']:.3f}s | fleet crashed "
        f"{result['crashed_wall']:.3f}s "
        f"(ratio {result['crash_ratio']:.2f}x)"
    )
    print(
        f"kill of {result['victim']!r}: {result['respawns']:.0f} respawn(s), "
        f"{result['blocks_replayed']:.0f} of "
        f"{result['blocks_dispatched']:.0f} blocks replayed from the "
        f"journal tail, {result['checkpoints']:.0f} checkpoints"
    )
    save_json("fleet_crash_recovery", result)
    assert result["agree"], "fleet runs must agree with the sequential run"
    assert result["workers_lost"] >= 1, "the injected kill must land"
    assert result["degraded"] == 0, "recovery must not fall back"
    assert result["crash_ratio"] < CRASH_RATIO_BOUND, (
        f"crash recovery cost {result['crash_ratio']:.2f}x, "
        f"bound {CRASH_RATIO_BOUND}x"
    )


# ----------------------------------------------------------------------
# Skewed storm: delta shipping + rebalancing vs full-frame checkpoints
# ----------------------------------------------------------------------

#: ``full_frame`` bytes must exceed ``delta`` bytes by at least this.
BYTES_REDUCTION_FLOOR = 3.0
#: Reported-only in quick mode; asserted in full runs.
DELTA_WALL_BOUND = 1.05

SKEW_RETRY = RetryPolicy(
    max_retries=1,
    backoff_seconds=0.02,
    task_timeout=30.0,
    jitter=0.1,
    max_respawns=2,
    ack_resends=1,
)


def build_skewed_storm(setting, hot_index: int = 0, hot_share: float = 0.9):
    """A stream where ``hot_share`` of the updates touch one shard.

    Keeps every update routed to the hot subspace (in original order —
    trace streams delete after inserting, so order is semantic) and
    thins the rest until the hot shard carries ~``hot_share`` of the
    stream.  Cold thinning drops whole ``(device, rule)`` insert/delete
    pairs: keeping a delete whose insert was thinned away would fault
    the shard with ``RuleNotFoundError``.
    """
    updates = setting.trace_updates()
    routed = setting.partition.route_updates(updates)
    hot_ids = {id(u) for u in routed[hot_index]}
    hot = [u for u in updates if id(u) in hot_ids]
    cold = [u for u in updates if id(u) not in hot_ids]
    cold_keys: List[tuple] = []
    seen = set()
    for u in cold:
        key = (u.device, u.rule)
        if key not in seen:
            seen.add(key)
            cold_keys.append(key)
    want_cold = int(len(hot) * (1.0 - hot_share) / hot_share)
    step = max(1, (2 * len(cold_keys)) // max(1, want_cold))
    keep = set(cold_keys[::step])
    return [
        u
        for u in updates
        if id(u) in hot_ids or (u.device, u.rule) in keep
    ]


def _canonical(models) -> Dict[str, Dict[tuple, int]]:
    """Split-granularity-proof comparison key: per base shard, the map
    ``sorted action dict -> covered headers`` (a rebalanced run reports
    ``pod1`` + ``pod1.1`` where a static run reports ``pod1``)."""
    out: Dict[str, Dict[tuple, int]] = {}
    for name, pairs in models.items():
        base = out.setdefault(name.split(".")[0], {})
        for pred, actions in pairs:
            key = tuple(sorted(actions.items()))
            base[key] = base.get(key, 0) + pred.sat_count()
    return out


def _skew_run(setting, updates, compact_every, rebalance=None):
    result = run_partitioned(
        setting.topology.switches(),
        setting.layout,
        setting.partition,
        updates,
        processes=PROCESSES,
        retry=SKEW_RETRY,
        block_size=8,
        checkpoint_every=2,
        compact_every=compact_every,
        rebalance=rebalance,
        heartbeat_interval=0.05,
        collect_models=True,
    )
    reg = result.registry
    bytes_shipped = reg.value("fleet.checkpoint.bytes") + reg.value(
        "fleet.ship.bytes"
    )
    return result, {
        "wall": result.wall_seconds,
        "bytes": bytes_shipped,
        "checkpoint_bytes": reg.value("fleet.checkpoint.bytes"),
        "ship_bytes": reg.value("fleet.ship.bytes"),
        "checkpoints": reg.value("fleet.checkpoints"),
        "checkpoints_rejected": reg.value("fleet.checkpoints.rejected"),
        "splits": reg.value("fleet.rebalance.splits"),
        "migrated_bytes": reg.value("fleet.rebalance.migrated_bytes"),
        "degraded": reg.value("fleet.degraded"),
    }


def run_skewed_storm(quick: bool) -> Dict[str, object]:
    setting = lnet_ecmp()
    updates = build_skewed_storm(setting)
    if quick:
        updates = updates[: len(updates) // 2]
    hot_name = setting.partition.subspaces[0].name
    sequential = run_partitioned(
        setting.topology.switches(),
        setting.layout,
        setting.partition,
        updates,
        processes=None,
        collect_models=True,
    )
    oracle = _canonical(sequential.models)
    rebalance = RebalancePolicy(
        ewma_alpha=0.3,
        min_samples=2,
        min_backlog=2,
        skew_ratio=2.0,
        cooldown_seconds=0.05,
        max_splits=2,
    )
    report: Dict[str, object] = {
        "setting": setting.name,
        "mode": "quick" if quick else "full",
        "updates": len(updates),
        "hot_shard": hot_name,
        "workers": PROCESSES,
        "block_size": 8,
        "checkpoint_every": 2,
        "sequential_wall": sequential.wall_seconds,
        "runs": {},
    }
    configs = [
        ("full_frame", 1, None),
        ("delta", 8, None),
        ("delta_rebalance", 8, rebalance),
    ]
    for name, compact_every, policy in configs:
        result, row = _skew_run(setting, updates, compact_every, policy)
        row["compact_every"] = compact_every
        row["ok"] = bool(result.ok)
        row["agree"] = _canonical(result.models) == oracle
        report["runs"][name] = row
        print(
            f"{name:<16} wall={row['wall']:7.3f}s "
            f"bytes={row['bytes']:>12,} "
            f"(ckpt {row['checkpoint_bytes']:,} + ship {row['ship_bytes']:,}) "
            f"checkpoints={row['checkpoints']:.0f} "
            f"splits={row['splits']:.0f} agree={row['agree']}"
        )
    full = report["runs"]["full_frame"]
    delta = report["runs"]["delta"]
    rebal = report["runs"]["delta_rebalance"]
    report["bytes_reduction"] = (
        full["bytes"] / delta["bytes"] if delta["bytes"] else float("inf")
    )
    report["delta_wall_ratio"] = delta["wall"] / full["wall"]
    report["rebalance_wall_ratio"] = rebal["wall"] / full["wall"]
    print(
        f"bytes reduction {report['bytes_reduction']:.2f}x | "
        f"delta wall {report['delta_wall_ratio']:.2f}x of full | "
        f"rebalance wall {report['rebalance_wall_ratio']:.2f}x of full"
    )
    return report


def check_skewed_storm(report: Dict[str, object]) -> List[str]:
    failures: List[str] = []
    for name, row in report["runs"].items():
        if not row["ok"]:
            failures.append(f"{name}: fleet run reported failures")
        if not row["agree"]:
            failures.append(f"{name}: models diverged from sequential")
        if row["checkpoints_rejected"]:
            failures.append(
                f"{name}: {row['checkpoints_rejected']:.0f} checkpoints "
                "rejected — the delta chain broke mid-run"
            )
    if report["bytes_reduction"] < BYTES_REDUCTION_FLOOR:
        failures.append(
            f"delta checkpoints shipped only "
            f"{report['bytes_reduction']:.2f}x fewer bytes than full "
            f"frames (floor {BYTES_REDUCTION_FLOOR}x)"
        )
    if report["runs"]["delta_rebalance"]["splits"] < 1:
        failures.append("rebalance policy never split the hot shard")
    if report["mode"] == "full":
        # Wall ratios are only stable enough to gate at full size.
        if report["delta_wall_ratio"] > DELTA_WALL_BOUND:
            failures.append(
                f"delta shipping cost {report['delta_wall_ratio']:.2f}x "
                f"wall vs full frames (bound {DELTA_WALL_BOUND}x)"
            )
        if report["rebalance_wall_ratio"] >= 1.0:
            failures.append(
                f"rebalanced run ({report['rebalance_wall_ratio']:.2f}x) "
                "did not beat static sharding on the skewed storm"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Skewed-storm fleet shipping benchmark"
    )
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate: model agreement, zero rejected checkpoints, "
        f">={BYTES_REDUCTION_FLOOR}x bytes reduction, and (full mode) "
        "wall-clock bounds",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the JSON report to this path (the run always "
        "saves benchmarks/results/fleet_skewed_storm.json)",
    )
    args = parser.parse_args(argv)

    report = run_skewed_storm(args.quick)
    path = save_json("fleet_skewed_storm", report)
    print(f"wrote {path}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        failures = check_skewed_storm(report)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("fleet skewed-storm gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
