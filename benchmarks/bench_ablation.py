"""Ablation studies for the design choices DESIGN.md calls out.

1. **PAT vs array vectors** — §3.4/§5.4: hash-consed persistent treap
   vectors vs interned O(N)-copy tuples, isolated inside the same Fast IMT
   pipeline.
2. **MR2 aggregation on/off** — Reduce I/II vs applying atomic overwrites
   one by one (the "Flash (per-update mode)" of Figure 11, here on a storm).
3. **Overlapped-rule trie on/off** — APKeep*'s per-update change
   computation with the §3.4 prefix trie vs a full-table scan.
4. **Hyper-node compression on/off** — §4.3: potential-loop early
   information that the naive synced-only approach misses (Figure 5(b)).
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.apkeep import APKeepVerifier
from repro.ce2d.loop_detector import LoopDetector
from repro.core.arraystore import ArrayActionStore
from repro.core.model_manager import ModelWriter
from repro.dataplane.rule import Rule
from repro.dataplane.update import insert
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.generators import fabric

from .harness import save_json
from .settings import lnet_apsp, lnet_ecmp


def bench_ablation_pat_vs_array(benchmark):
    """PAT's structural sharing vs O(N) tuple copies, same pipeline."""
    setting = lnet_apsp()
    updates = setting.storm_updates()
    results = {}

    def run():
        for label, store in (("pat", None), ("array", ArrayActionStore())):
            manager = ModelWriter(
                setting.topology.switches(), setting.layout, store=store
            )
            start = time.perf_counter()
            manager.submit(updates)
            manager.flush()
            results[label] = {
                "seconds": time.perf_counter() - start,
                "store_nodes": manager.store.num_nodes,
                "ecs": manager.num_ecs(),
            }
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation — PAT vs array action vectors ===")
    for label, r in results.items():
        print(
            f"{label:<7} {r['seconds']:.3f}s  store nodes {r['store_nodes']:>7}  "
            f"ECs {r['ecs']}"
        )
    save_json("ablation_pat", results)
    # Same semantics either way.
    assert results["pat"]["ecs"] == results["array"]["ecs"]
    # PAT's node count grows with touched paths, the array store's with
    # whole-vector copies; at equal semantics PAT shares more.
    devices = len(setting.topology.switches())
    assert results["pat"]["store_nodes"] <= results["array"]["store_nodes"] * devices


def bench_ablation_pat_scaling(benchmark):
    """Store-level scaling: single-device overwrites on N-device vectors.

    This isolates §3.4's complexity claim — O(‖y*‖·lg N) per overwrite for
    PAT vs O(N) for arrays — without the pipeline around it.  The paper's
    §5.4 observes the effect only on large networks; the measured crossover
    confirms why.
    """
    import random

    from repro.core.actiontree import ActionTreeStore

    OVERWRITES = 2000
    sizes = [32, 256, 2048]
    table = {}

    def run():
        for n in sizes:
            devices = list(range(n))
            rng = random.Random(7)
            ops = [(rng.randrange(n), rng.randrange(8)) for _ in range(OVERWRITES)]
            row = {}
            for label, store in (
                ("pat", ActionTreeStore()),
                ("array", ArrayActionStore()),
            ):
                root = store.uniform(devices, 0)
                start = time.perf_counter()
                for device, action in ops:
                    root = store.overwrite(root, {device: action})
                row[label] = time.perf_counter() - start
            table[n] = row
        return table

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation — PAT vs array overwrite scaling ===")
    print(f"{'N devices':>10} {'PAT(s)':>9} {'array(s)':>9} {'array/PAT':>10}")
    for n, row in table.items():
        print(
            f"{n:>10} {row['pat']:>9.3f} {row['array']:>9.3f} "
            f"{row['array'] / row['pat']:>10.2f}"
        )
    save_json("ablation_pat_scaling", {str(k): v for k, v in table.items()})
    # The array store degrades with N; PAT stays ~logarithmic.  At the
    # largest size PAT must win.
    assert table[sizes[-1]]["pat"] < table[sizes[-1]]["array"]
    growth_pat = table[sizes[-1]]["pat"] / table[sizes[0]]["pat"]
    growth_array = table[sizes[-1]]["array"] / table[sizes[0]]["array"]
    assert growth_array > growth_pat


def bench_ablation_aggregation(benchmark):
    """Reduce I/II on vs off for a storm (predicate-op and apply savings)."""
    setting = lnet_ecmp()
    updates = setting.storm_updates()
    results = {}

    def run():
        for label, aggregate in (("mr2", True), ("no-reduce", False)):
            manager = ModelWriter(
                setting.topology.switches(), setting.layout, aggregate=aggregate
            )
            manager.submit(updates)
            manager.flush()
            b = manager.breakdown
            results[label] = {
                "ops": manager.engine.metrics.total,
                "apply_seconds": b.apply_seconds,
                "applied_overwrites": b.aggregated_overwrites,
                "ecs": manager.num_ecs(),
            }
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation — MR2 aggregation on/off (LNet-ecmp storm) ===")
    for label, r in results.items():
        print(
            f"{label:<10} ops {r['ops']:>8}  apply {r['apply_seconds']:.3f}s  "
            f"overwrites applied {r['applied_overwrites']:>6}  ECs {r['ecs']}"
        )
    save_json("ablation_aggregation", results)
    assert results["mr2"]["ecs"] == results["no-reduce"]["ecs"]
    assert (
        results["mr2"]["applied_overwrites"]
        < results["no-reduce"]["applied_overwrites"]
    )
    assert results["mr2"]["ops"] <= results["no-reduce"]["ops"]


def bench_ablation_rule_trie(benchmark):
    """APKeep*'s per-update eff computation with vs without the trie."""
    setting = lnet_apsp()
    updates = setting.storm_updates()
    results = {}

    def run():
        for label, use_index in (("trie", True), ("scan", False)):
            verifier = APKeepVerifier(
                setting.topology.switches(), setting.layout, use_index=use_index
            )
            start = time.perf_counter()
            verifier.process_updates(updates)
            results[label] = {
                "seconds": time.perf_counter() - start,
                "ops": verifier.metrics.total,
                "ecs": verifier.num_ecs(),
            }
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation — overlapped-rule trie vs full scan (APKeep*) ===")
    for label, r in results.items():
        print(f"{label:<6} {r['seconds']:.3f}s  ops {r['ops']:>8}  ECs {r['ecs']}")
    save_json("ablation_trie", results)
    assert results["trie"]["ecs"] == results["scan"]["ecs"]
    # The trie prunes non-overlapping rules, so it can only reduce BDD work.
    assert results["trie"]["ops"] <= results["scan"]["ops"]


def bench_ablation_hyper_nodes(benchmark):
    """Hyper-node compression surfaces potential loops the naive mode misses.

    The Figure-5(b) situation: a synced chain points into an unsynced
    region that can close the loop.  With hyper nodes the detector reports
    potential-loop information; without, silence.
    """
    layout = dst_only_layout(6)
    results = {}

    def run():
        from repro.network.topology import Topology

        topo = Topology()
        for name in "ABCX":
            topo.add_device(name)
        topo.add_link_by_name("A", "B")
        topo.add_link_by_name("B", "C")
        topo.add_link_by_name("C", "X")
        topo.add_link_by_name("X", "A")
        updates = {
            "A": Rule(1, Match.wildcard(), topo.id_of("B")),
            "B": Rule(1, Match.wildcard(), topo.id_of("C")),
            "C": Rule(1, Match.wildcard(), topo.id_of("X")),
        }
        for label, use_hyper in (("hyper", True), ("naive", False)):
            from repro.core.model_manager import ModelWriter

            manager = ModelWriter(topo.switches(), layout)
            detector = LoopDetector(topo, use_hyper=use_hyper)
            for name, rule in updates.items():
                device = topo.id_of(name)
                manager.submit([insert(device, rule)])
                deltas = manager.flush()
                detector.on_model_update(deltas, [device], manager.model)
            results[label] = {
                "potential_loops": detector.potential_loops,
                "verdict": detector.verdict.value,
            }
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation — hyper-node compression (Figure 5(b)) ===")
    for label, r in results.items():
        print(
            f"{label:<6} potential loops {r['potential_loops']}  "
            f"verdict {r['verdict']}"
        )
    save_json("ablation_hyper", results)
    assert results["hyper"]["potential_loops"] > 0
    assert results["naive"]["potential_loops"] == 0


def bench_ablation_flash_trie(benchmark):
    """§3.4's trie look-up inside Flash itself, in per-update mode.

    The sorted scan costs O(T) predicate disjunctions per update; the trie
    subtracts only genuinely overlapping rules — the per-update win the
    paper attributes to the multi-dimension prefix trie.
    """
    setting = lnet_apsp()
    updates = setting.storm_updates()
    results = {}

    def run():
        for label, use_trie in (("scan", False), ("trie", True)):
            manager = ModelWriter(
                setting.topology.switches(),
                setting.layout,
                block_threshold=1,  # per-update mode: where look-up matters
                use_trie=use_trie,
            )
            start = time.perf_counter()
            manager.submit(updates)
            results[label] = {
                "seconds": time.perf_counter() - start,
                "ops": manager.engine.metrics.total,
                "ecs": manager.num_ecs(),
            }
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation — Flash per-update: sorted scan vs trie ===")
    for label, r in results.items():
        print(f"{label:<6} {r['seconds']:.3f}s  ops {r['ops']:>8}  ECs {r['ecs']}")
    save_json("ablation_flash_trie", results)
    assert results["trie"]["ecs"] == results["scan"]["ecs"]
    assert results["trie"]["ops"] <= results["scan"]["ops"]
