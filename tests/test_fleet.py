"""Tests for the persistent worker fleet (repro.fleet).

Every test here runs real OS processes through the supervised dispatch
path: heartbeats, per-block acks, checkpoint + journal-tail recovery,
idempotent redelivery, and graceful degradation into the in-process
fallback.  The invariant throughout is *verdict preservation*: whatever
the storm does to the workers, the per-subspace stats (ECs, applied
updates) must equal a clean sequential run's.
"""

import pytest

from repro.bdd.wire import (
    WireFormatError,
    frame_shard_snapshot,
    unframe_shard_snapshot,
)
from repro.core.parallel import run_partitioned
from repro.core.subspace import SubspacePartition
from repro.dataplane.rule import Rule
from repro.dataplane.update import insert
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.generators import ring
from repro.resilience import RetryPolicy

pytestmark = pytest.mark.fleet

LAYOUT = dst_only_layout(6)

# Fast-failure-detection policy: tests inject hangs/kills, so the ack
# watchdog and respawn backoff are tightened far below the defaults.
FAST = RetryPolicy(
    max_retries=1,
    backoff_seconds=0.01,
    task_timeout=1.0,
    jitter=0.0,
    max_respawns=2,
    ack_resends=1,
)


def setup_workload(per_shard: int = 6):
    """A ring plus enough single-shard updates for a multi-block storm.

    ``per_shard`` non-overlapping rules land in each of the two dst
    subspaces, so with ``block_size=1`` every shard sees ``per_shard``
    blocks — room for checkpoints, a journal tail, and a mid-storm kill.
    """
    topo = ring(4)
    partition = SubspacePartition.dst_prefix_partition(
        LAYOUT, [(0x00, 1), (0x20, 1)]
    )
    updates = []
    for i in range(per_shard):
        low = Match.dst_prefix(i << 2, 4, LAYOUT)  # dst top bit 0 -> sub0
        high = Match.dst_prefix(0x20 | (i << 2), 4, LAYOUT)  # -> sub1
        updates.append(insert(i % 4, Rule(1 + i, low, 1)))
        updates.append(insert((i + 1) % 4, Rule(1 + i, high, 2)))
    return topo, partition, updates


def run_clean(topo, partition, updates):
    return run_partitioned(
        topo.switches(), LAYOUT, partition, updates, processes=None
    )


def assert_stats_match(result, clean):
    by_name = {s.subspace: s for s in result.stats}
    clean_by_name = {s.subspace: s for s in clean.stats}
    assert set(by_name) == set(clean_by_name)
    for name in by_name:
        assert by_name[name].ecs == clean_by_name[name].ecs, name
        assert by_name[name].updates == clean_by_name[name].updates, name


class TestFaultFreeFleet:
    def test_matches_sequential_blockwise(self):
        """Block-at-a-time dispatch (the fleet's native shape) produces
        the same per-subspace stats as one sequential pass."""
        topo, partition, updates = setup_workload()
        clean = run_clean(topo, partition, updates)
        result = run_partitioned(
            topo.switches(), LAYOUT, partition, updates,
            processes=2, block_size=2, checkpoint_every=2,
        )
        assert result.ok and not result.failures
        assert_stats_match(result, clean)
        reg = result.registry
        dispatched = reg.value("fleet.blocks.dispatched")
        assert dispatched == reg.value("fleet.blocks.acked") > 0
        assert reg.value("fleet.checkpoints") > 0
        assert reg.value("fleet.respawns") == 0
        assert reg.value("fleet.workers.lost") == 0
        assert reg.value("parallel.workers") == 2

    def test_collected_models_match_sequential(self):
        topo, partition, updates = setup_workload(per_shard=4)
        seq = run_partitioned(
            topo.switches(), LAYOUT, partition, updates,
            processes=None, collect_models=True,
        )
        par = run_partitioned(
            topo.switches(), LAYOUT, partition, updates,
            processes=2, block_size=2, collect_models=True,
        )
        for name in seq.models:
            seq_view = {
                tuple(sorted(actions.items())): pred.sat_count()
                for pred, actions in seq.models[name]
            }
            par_view = {
                tuple(sorted(actions.items())): pred.sat_count()
                for pred, actions in par.models[name]
            }
            assert seq_view == par_view


class TestCrashRecovery:
    def test_killed_worker_replays_only_the_journal_tail(self):
        """A worker killed mid-storm resumes from its last FSJ1 snapshot
        and replays only the acked-but-uncheckpointed tail — not the
        whole batch.  With checkpoint_every=2 and the kill landing on
        delivery #4 (``#3``), the tail is exactly one block."""
        topo, partition, updates = setup_workload(per_shard=6)
        clean = run_clean(topo, partition, updates)
        result = run_partitioned(
            topo.switches(), LAYOUT, partition, updates,
            processes=2, block_size=1, checkpoint_every=2,
            retry=FAST, faults={"sub0": "kill@1#3"},
        )
        assert result.ok
        assert_stats_match(result, clean)
        reg = result.registry
        assert reg.value("fleet.workers.lost") == 1
        assert reg.value("fleet.respawns") == 1
        replayed = reg.value("fleet.blocks.replayed")
        # Checkpoint at block 2, acked tail = block 3, killed on block 4.
        assert replayed == 1
        assert replayed < 6  # never the whole per-shard batch
        failure = result.failures[0]
        assert failure.subspace == "sub0"
        assert failure.recovered and failure.timed_out

    def test_snapshot_frame_round_trips(self):
        blob = b"\x01\x02\x03fake-fbw1-payload"
        framed = frame_shard_snapshot(blob, [1, 2, 5, 9])
        out, journal = unframe_shard_snapshot(framed)
        assert out == blob and journal == [1, 2, 5, 9]

    def test_snapshot_frame_rejects_corruption(self):
        framed = frame_shard_snapshot(b"payload", [1, 2])
        with pytest.raises(WireFormatError):
            unframe_shard_snapshot(b"XXXX" + framed[4:])  # bad magic
        with pytest.raises(WireFormatError):
            unframe_shard_snapshot(framed[:-1])  # truncated blob
        with pytest.raises(WireFormatError):
            frame_shard_snapshot(b"p", [2, 1])  # non-monotone journal


class TestLivenessAndIdempotency:
    @pytest.mark.slow
    def test_hung_worker_is_detected_and_replaced(self):
        """A hang never errors and never acks: only the ack watchdog can
        notice.  After the resend budget the worker is killed; the
        respawned generation (fault window passed) finishes the shard."""
        topo, partition, updates = setup_workload(per_shard=4)
        clean = run_clean(topo, partition, updates)
        result = run_partitioned(
            topo.switches(), LAYOUT, partition, updates,
            processes=2, block_size=1, checkpoint_every=2,
            retry=RetryPolicy(
                max_retries=1, backoff_seconds=0.01, task_timeout=0.4,
                jitter=0.0, max_respawns=2, ack_resends=1,
            ),
            faults={"sub1": "hang@1#1"},
        )
        assert result.ok
        assert_stats_match(result, clean)
        reg = result.registry
        assert reg.value("fleet.blocks.resent") >= 1
        assert reg.value("fleet.workers.lost") >= 1
        failure = result.failures[0]
        assert failure.subspace == "sub1"
        assert failure.recovered and failure.timed_out

    def test_dropped_ack_redelivery_dedupes_at_the_watermark(self):
        """drop-ack applies the block but swallows the ack; the resend
        must hit the worker's idempotency watermark (skipped ack), not
        re-apply — stats count every update exactly once."""
        topo, partition, updates = setup_workload(per_shard=4)
        clean = run_clean(topo, partition, updates)
        result = run_partitioned(
            topo.switches(), LAYOUT, partition, updates,
            processes=2, block_size=1, checkpoint_every=2,
            retry=RetryPolicy(
                max_retries=1, backoff_seconds=0.01, task_timeout=0.3,
                jitter=0.0, max_respawns=2, ack_resends=2,
            ),
            faults={"sub0": "drop-ack@1#1"},
        )
        assert result.ok
        assert_stats_match(result, clean)
        reg = result.registry
        assert reg.value("fleet.blocks.resent") >= 1
        assert reg.value("fleet.blocks.deduped") >= 1
        # Redelivery was absorbed without another process death.
        assert reg.value("fleet.workers.lost") == 0


class TestGracefulDegradation:
    @pytest.mark.slow
    def test_unkillable_shard_degrades_to_in_process_fallback(self):
        """A worker that dies on every generation exhausts max_respawns;
        its shards fold back into the supervisor's fallback verifier and
        the run still converges."""
        topo, partition, updates = setup_workload(per_shard=4)
        clean = run_clean(topo, partition, updates)
        result = run_partitioned(
            topo.switches(), LAYOUT, partition, updates,
            processes=2, block_size=1, checkpoint_every=2,
            retry=RetryPolicy(
                max_retries=1, backoff_seconds=0.01, task_timeout=1.0,
                jitter=0.0, max_respawns=1, ack_resends=0,
            ),
            faults={"sub0": "kill@99"},
        )
        assert result.ok  # degraded but recovered
        assert_stats_match(result, clean)
        reg = result.registry
        assert reg.value("fleet.degraded") == 1
        assert reg.value("resilience.subspace.sequential_reruns") == 1
        assert reg.value("fleet.blocks.fallback") >= 1
        failure = next(f for f in result.failures if f.subspace == "sub0")
        assert failure.recovered


def skewed_workload(hot: int = 16, cold: int = 3):
    """A storm where ~85% of the updates land in sub0 (the hot half)."""
    topo = ring(4)
    partition = SubspacePartition.dst_prefix_partition(
        LAYOUT, [(0x00, 1), (0x20, 1)]
    )
    updates = []
    for i in range(hot):
        match = Match.dst_prefix((i % 16) << 1, 5, LAYOUT)  # top bit 0
        updates.append(insert(i % 4, Rule(1 + i, match, 1)))
    for i in range(cold):
        match = Match.dst_prefix(0x20 | ((i % 16) << 1), 5, LAYOUT)
        updates.append(insert(i % 4, Rule(1 + i, match, 2)))
    return topo, partition, updates


def canonical_models(models):
    """Per base-shard {sorted action map -> headers} — split-proof.

    A rebalanced run reports ``sub0`` and ``sub0.1`` where the static
    run reports ``sub0``; aggregating EC header counts by action map
    under the base name compares the two shapes exactly."""
    out = {}
    for name, pairs in models.items():
        base = out.setdefault(name.split(".")[0], {})
        for pred, actions in pairs:
            key = tuple(sorted(actions.items()))
            base[key] = base.get(key, 0) + pred.sat_count()
    return out


class TestDeltaCheckpoints:
    def test_fault_free_delta_run_ships_bytes_and_matches(self):
        """compact_every=3: most checkpoints ship as FBW2 deltas; the
        byte counters tick and the result still matches sequential."""
        topo, partition, updates = setup_workload(per_shard=6)
        clean = run_clean(topo, partition, updates)
        result = run_partitioned(
            topo.switches(), LAYOUT, partition, updates,
            processes=2, block_size=1, checkpoint_every=2, compact_every=3,
            collect_models=True,
        )
        assert result.ok and not result.failures
        assert_stats_match(result, clean)
        reg = result.registry
        assert reg.value("fleet.checkpoints") > 0
        assert reg.value("fleet.checkpoints.rejected") == 0
        assert reg.value("fleet.checkpoint.bytes") > 0
        assert reg.value("fleet.ship.bytes") > 0

    def test_compact_every_one_is_the_legacy_full_frame_path(self):
        topo, partition, updates = setup_workload(per_shard=4)
        clean = run_clean(topo, partition, updates)
        result = run_partitioned(
            topo.switches(), LAYOUT, partition, updates,
            processes=2, block_size=1, checkpoint_every=2, compact_every=1,
        )
        assert result.ok and not result.failures
        assert_stats_match(result, clean)
        assert result.registry.value("fleet.checkpoints.rejected") == 0

    def test_kill_recovers_through_a_delta_chain(self):
        """The respawn restore crosses a full frame plus FBW2 deltas
        (compact_every=3 with the kill after four checkpointed blocks),
        then replays the journal tail."""
        topo, partition, updates = setup_workload(per_shard=8)
        clean = run_clean(topo, partition, updates)
        result = run_partitioned(
            topo.switches(), LAYOUT, partition, updates,
            processes=2, block_size=1, checkpoint_every=2, compact_every=3,
            retry=FAST, faults={"sub0": "kill@1#5"},
        )
        assert result.ok
        assert_stats_match(result, clean)
        reg = result.registry
        assert reg.value("fleet.workers.lost") == 1
        assert reg.value("fleet.respawns") == 1
        assert reg.value("fleet.checkpoints.rejected") == 0
        failure = result.failures[0]
        assert failure.subspace == "sub0" and failure.recovered

    def test_deduped_acks_do_not_advance_checkpoint_cadence(self):
        """Only *applied* blocks count toward ``checkpoint_every``.

        Drives the worker loop in-thread with duplicate deliveries
        interleaved between fresh blocks: the duplicates must come back
        as ``skipped`` acks and must NOT shift the checkpoint cadence —
        with ``checkpoint_every=2`` and four applied blocks, exactly two
        checkpoints fire, at watermarks 2 and 4, no matter how many
        redeliveries arrive in between."""
        import queue
        import threading

        from repro.fleet.messages import (
            Block,
            BlockAck,
            ShardCheckpoint,
            ShardSpec,
            Stop,
            WorkerBye,
            WorkerSpec,
        )
        from repro.fleet.worker import worker_main

        topo, partition, updates = setup_workload(per_shard=4)
        sub0 = [
            u for u in updates
            if (partition.route_updates([u]).get(0) or [])
        ]
        assert len(sub0) >= 4
        spec = WorkerSpec(
            worker_id=0, generation=0,
            devices=tuple(topo.switches()), layout=LAYOUT,
            shards=(ShardSpec(0, "sub0", partition.subspaces[0].match),),
            heartbeat_interval=30.0, checkpoint_every=2, compact_every=3,
        )
        inbox, outbox = queue.Queue(), queue.Queue()
        thread = threading.Thread(
            target=worker_main, args=(spec, inbox, outbox), daemon=True
        )
        thread.start()
        blocks = [
            Block("sub0", i + 1, "test", (sub0[i],)) for i in range(4)
        ]
        for message in (
            blocks[0], blocks[1],
            blocks[1], blocks[0],  # duplicate redeliveries, mid-cadence
            blocks[2], blocks[3],
            Stop(),
        ):
            inbox.put(message)
        acks, checkpoints = [], []
        while True:
            message = outbox.get(timeout=30.0)
            if isinstance(message, BlockAck):
                acks.append(message)
            elif isinstance(message, ShardCheckpoint):
                checkpoints.append(message)
            elif isinstance(message, WorkerBye):
                break
        thread.join(timeout=30.0)
        assert [a.skipped for a in acks] == [
            False, False, True, True, False, False
        ]
        assert [c.block_id for c in checkpoints] == [2, 4]


class TestRebalancing:
    def _storm(self, migration_kill=None, max_splits=1):
        from repro.fleet import FleetSupervisor, RebalancePolicy

        topo, partition, updates = skewed_workload()
        seq = run_partitioned(
            topo.switches(), LAYOUT, partition, updates,
            processes=None, collect_models=True,
        )
        fleet = FleetSupervisor(
            topo.switches(), LAYOUT, partition,
            processes=2, block_size=1, checkpoint_every=2, compact_every=3,
            rebalance=RebalancePolicy.aggressive(max_splits=max_splits),
            chaos_migration_kill=migration_kill,
            retry=FAST,
        )
        try:
            fleet.submit(updates)
            outcome = fleet.finish(collect_models=True, timeout=120.0)
        finally:
            fleet.close()
        return seq, outcome, fleet.parent.registry

    def _models_of(self, outcome):
        from repro.bdd.predicate import PredicateEngine

        engine = PredicateEngine(LAYOUT.total_bits)
        models = {}
        for name, shard in outcome.shards.items():
            frames, actions = shard.model
            models[name] = list(zip(engine.import_frames(frames), actions))
        return models

    def test_hot_shard_splits_and_matches_sequential(self):
        seq, outcome, reg = self._storm()
        assert outcome.ok, outcome.failures
        assert reg.value("fleet.rebalance.splits") == 1
        assert reg.value("fleet.rebalance.migrated_bytes") > 0
        assert "sub0.1" in outcome.shards  # the hot half was divided
        assert canonical_models(self._models_of(outcome)) == canonical_models(
            seq.models
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("side", ["source", "target"])
    def test_kill_mid_migration_converges(self, side):
        """The migration's source (restricted in place) or target
        (adopting the moved half) dies right as the split messages go
        out; respawn restores from the generation-tagged chain and the
        merged result still equals the sequential run."""
        seq, outcome, reg = self._storm(migration_kill=side)
        assert outcome.ok, (side, outcome.failures)
        assert reg.value("fleet.rebalance.splits") == 1
        assert reg.value("fleet.workers.lost") >= 1
        assert canonical_models(self._models_of(outcome)) == canonical_models(
            seq.models
        ), f"{side}-kill diverged"


class TestChaosFleetDifftest:
    @pytest.mark.slow
    def test_storm_scenarios_converge_to_the_oracle(self):
        """A sample of the chaos-fleet gate: seeded process-fault storms
        over generated scenarios, each asserted verdict-for-verdict
        against the clean single-process oracle."""
        from repro.difftest import FleetChaosRunner, ScenarioGenerator

        generator = ScenarioGenerator(seed=11, profile="smoke")
        runner = FleetChaosRunner(seed=11)
        for scenario in generator.stream(6):
            result = runner.run(scenario)
            assert result.ok, (
                f"{scenario.name} diverged under faults "
                f"{result.stats.get('fleet_faults')}: {result.divergences}"
            )
        assert runner.telemetry.registry.value(
            "difftest.fleet.scenarios"
        ) == 6
