"""Algorithm 2's incremental ecTable vs a rebuild-from-scratch reference.

The trickiest part of consistent partial verification is maintaining one
verification graph per equivalence class as ECs split and merge across
flushes (ecTable duplication, L7-10 of Algorithm 2).  This suite checks the
incremental path against a reference that, after every device batch,
builds a *fresh* verifier and judges the current model in one shot — any
provenance/duplication bug shows up as a verdict divergence.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ce2d.regex_verifier import RegexVerifier
from repro.results import Verdict
from repro.core.inverse_model import EcDelta
from repro.core.model_manager import ModelWriter
from repro.dataplane.rule import DROP, Rule
from repro.dataplane.update import insert
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.topology import Topology
from repro.spec.requirement import requirement

LAYOUT = dst_only_layout(3)


def random_topology(rng):
    n = rng.randint(4, 6)
    topo = Topology()
    for i in range(n):
        topo.add_device(f"s{i}")
    for i in range(1, n):
        topo.add_link(i, rng.randrange(i))
    for _ in range(rng.randint(0, n)):
        u, v = rng.sample(range(n), 2)
        if not topo.has_link(u, v):
            topo.add_link(u, v)
    sink = topo.add_external("sink", prefixes=[(0, 0)])
    topo.add_link(rng.randrange(n), sink)
    return topo


def random_updates(topo, device, rng):
    """Up to three rules with random prefixes — forces EC splits/merges."""
    updates = []
    for pri in range(1, rng.randint(1, 4)):
        length = rng.randint(0, 3)
        value = rng.randrange(8)
        action = rng.choice(sorted(topo.neighbors(device)) + [DROP])
        if action != DROP:
            updates.append(
                insert(device, Rule(pri, Match.dst_prefix(value, length, LAYOUT), action))
            )
    return updates


def fresh_verdict(req, topo, manager, synced):
    """Ground truth: a fresh verifier judging the current model in one shot."""
    reference = RegexVerifier(req, topo, LAYOUT, manager.compiler)
    deltas = [
        EcDelta(pred, vec, pred.node) for pred, vec in manager.model.entries()
    ]
    return reference.on_model_update(deltas, sorted(synced), manager.model).verdict


class TestIncrementalMatchesReference:
    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_stepwise_verdicts_match(self, seed):
        rng = random.Random(seed)
        topo = random_topology(rng)
        req = requirement(
            "reach", topo, LAYOUT, Match.wildcard(), ["s0"], "s0 .* >"
        )
        manager = ModelWriter(topo.switches(), LAYOUT)
        incremental = RegexVerifier(req, topo, LAYOUT, manager.compiler)
        synced = set()
        order = list(topo.switches())
        rng.shuffle(order)
        for device in order:
            manager.submit(random_updates(topo, device, rng))
            deltas = manager.flush()
            if not deltas:
                deltas = [
                    EcDelta(pred, vec, pred.node)
                    for pred, vec in manager.model.entries()
                ]
            synced.add(device)
            got = incremental.on_model_update(deltas, [device], manager.model)
            expected = fresh_verdict(req, topo, manager, synced)
            assert got.verdict == expected, (seed, device, synced)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_waypoint_requirement_matches(self, seed):
        rng = random.Random(seed)
        topo = random_topology(rng)
        waypoint = topo.name_of(rng.choice(topo.switches()[1:]))
        req = requirement(
            "way", topo, LAYOUT, Match.wildcard(), ["s0"],
            f"s0 .* {waypoint} .* >",
        )
        manager = ModelWriter(topo.switches(), LAYOUT)
        incremental = RegexVerifier(req, topo, LAYOUT, manager.compiler)
        synced = set()
        order = list(topo.switches())
        rng.shuffle(order)
        for device in order:
            manager.submit(random_updates(topo, device, rng))
            deltas = manager.flush()
            if not deltas:
                deltas = [
                    EcDelta(pred, vec, pred.node)
                    for pred, vec in manager.model.entries()
                ]
            synced.add(device)
            got = incremental.on_model_update(deltas, [device], manager.model)
            expected = fresh_verdict(req, topo, manager, synced)
            assert got.verdict == expected, (seed, device, synced)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_graph_count_tracks_relevant_ecs(self, seed):
        """ecTable holds exactly the ECs intersecting the packet space."""
        rng = random.Random(seed)
        topo = random_topology(rng)
        space = Match.dst_prefix(0, 1, LAYOUT)  # half the space
        req = requirement("half", topo, LAYOUT, space, ["s0"], "s0 .* >")
        manager = ModelWriter(topo.switches(), LAYOUT)
        incremental = RegexVerifier(req, topo, LAYOUT, manager.compiler)
        space_pred = manager.compiler.compile(space)
        for device in topo.switches():
            manager.submit(random_updates(topo, device, rng))
            deltas = manager.flush()
            if not deltas:
                deltas = [
                    EcDelta(pred, vec, pred.node)
                    for pred, vec in manager.model.entries()
                ]
            incremental.on_model_update(deltas, [device], manager.model)
            relevant = sum(
                1
                for pred, _ in manager.model.entries()
                if pred.intersects(space_pred)
            )
            assert incremental.num_graphs == relevant, (seed, device)
