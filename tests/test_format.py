"""Tests for predicate rendering and analysis cross-validation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import reachability_matrix, trace_header
from repro.bdd.predicate import PredicateEngine
from repro.core.model_manager import ModelWriter
from repro.dataplane.rule import DROP, Rule
from repro.dataplane.update import insert
from repro.headerspace.fields import dst_only_layout, dst_src_layout
from repro.headerspace.format import (
    cube_to_fields,
    format_predicate,
    iter_predicate_cubes,
)
from repro.headerspace.match import Match, Pattern
from repro.network.generators import line

LAYOUT = dst_src_layout(4, 4)


@pytest.fixture()
def engine():
    return PredicateEngine(LAYOUT.total_bits)


class TestFormatting:
    def test_constants(self, engine):
        assert format_predicate(engine.false, LAYOUT) == "⊥"
        assert format_predicate(engine.true, LAYOUT) == "*"

    def test_prefix_renders_ternary(self, engine):
        pred = Match.dst_prefix(0b1000, 2, LAYOUT).to_predicate(engine, LAYOUT)
        text = format_predicate(pred, LAYOUT)
        assert "dst=10??" in text

    def test_two_field(self, engine):
        pred = Match(
            {"dst": Pattern.exact(3, 4), "src": Pattern.prefix(0b1000, 1, 4)}
        ).to_predicate(engine, LAYOUT)
        text = format_predicate(pred, LAYOUT)
        assert "dst=0011" in text and "src=1???" in text

    def test_cube_roundtrip_semantics(self, engine):
        """Every rendered cube, when re-parsed, lies inside the predicate."""
        pred = Match.dst_prefix(0b0100, 2, LAYOUT).to_predicate(engine, LAYOUT)
        for fields in iter_predicate_cubes(pred, LAYOUT):
            # materialize one concrete header from the cube
            values = {}
            for name, bits in fields.items():
                values[name] = int(bits.replace("?", "0"), 2)
            assignment = {}
            for name in LAYOUT.field_names():
                assignment.update(dict(LAYOUT.bits_of(name, values[name])))
            assert pred.evaluate(assignment)

    def test_truncation_marker(self, engine):
        # Exact (dst, src) pairs whose cubes cannot merge in the BDD cover.
        pairs = [(1, 2), (2, 5), (4, 9), (8, 14)]
        preds = [
            Match(
                {"dst": Pattern.exact(d, 4), "src": Pattern.exact(s, 4)}
            ).to_predicate(engine, LAYOUT)
            for d, s in pairs
        ]
        union = engine.disj_many(preds)
        cubes = list(iter_predicate_cubes(union, LAYOUT, limit=100))
        assert len(cubes) >= 4
        text = format_predicate(union, LAYOUT, limit=len(cubes) - 1)
        assert text.endswith("| ...")


class TestAnalysisCrossValidation:
    """reachability_matrix agrees with per-header trace_header walks."""

    @given(st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_matrix_matches_traces(self, seed):
        layout = dst_only_layout(4)
        rng = random.Random(seed)
        topo = line(4)
        sink = topo.add_external("sink")
        topo.add_link(3, sink)
        manager = ModelWriter(topo.switches(), layout)
        updates = []
        for device in topo.switches():
            for pri, (value, length) in enumerate(
                [(0, 1), (8, 1)], start=1
            ):
                action = rng.choice(
                    sorted(topo.neighbors(device)) + [DROP]
                )
                if action != DROP:
                    updates.append(
                        insert(device, Rule(pri, Match.dst_prefix(value, length, layout), action))
                    )
        manager.submit(updates)
        manager.flush()
        matrix = reachability_matrix(manager, topo, [0], [sink])
        pred = matrix[(0, sink)]
        for header in range(layout.universe_size):
            values = layout.unflatten(header)
            assignment = dict(layout.bits_of("dst", values["dst"]))
            trace = trace_header(manager, topo, 0, values)
            delivered = trace.outcome == "delivered"
            # The matrix uses full fan-out; single-next-hop FIBs make the
            # trace walk equivalent.
            assert pred.evaluate(assignment) == delivered, header
