"""The ``as_dict`` contract round-trips, and the legacy shims warn."""

import warnings

import pytest

from repro.results import (
    LoopReport,
    RunSummary,
    Verdict,
    VerificationReport,
    as_dicts,
    report_from_dict,
    verdict_tally,
)


class TestReportRoundTrip:
    @pytest.mark.parametrize("verdict", list(Verdict))
    def test_verification_report(self, verdict):
        report = VerificationReport(
            requirement="reach-sink",
            verdict=verdict,
            epoch="epoch-3",
            time=1.25,
            detail="ec 4 violated",
            witness=[3, 1, 2],
        )
        assert report_from_dict(report.as_dict()) == report

    def test_verification_report_defaults(self):
        report = VerificationReport("r", Verdict.UNKNOWN)
        assert report_from_dict(report.as_dict()) == report

    @pytest.mark.parametrize("verdict", list(Verdict))
    def test_loop_report(self, verdict):
        report = LoopReport(
            verdict=verdict, epoch="e-1", time=0.5, loop_path=[1, 2, 1]
        )
        rebuilt = report_from_dict(report.as_dict())
        assert rebuilt == report
        assert rebuilt.has_loop == (verdict is Verdict.VIOLATED)

    def test_loop_report_defaults(self):
        report = LoopReport(Verdict.SATISFIED)
        assert report_from_dict(report.as_dict()) == report

    def test_run_summary(self):
        reports = [
            VerificationReport("r1", Verdict.SATISFIED, epoch="e"),
            LoopReport(Verdict.VIOLATED, epoch="e", loop_path=[0, 1, 0]),
        ]
        summary = RunSummary(
            system="flash",
            seconds=2.5,
            verdicts=verdict_tally(reports),
            model_stats={"ecs": 12},
            reports=reports,
            metrics={"imt.blocks": 3},
        )
        assert RunSummary.from_dict(summary.as_dict()) == summary

    def test_as_dicts_matches_individual(self):
        reports = [
            LoopReport(Verdict.SATISFIED),
            VerificationReport("r", Verdict.VIOLATED),
        ]
        assert as_dicts(reports) == [r.as_dict() for r in reports]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            report_from_dict({"kind": "mystery"})


class TestDeprecationShims:
    def _collect(self, access):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            value = access()
        deprecations = [
            w for w in record if issubclass(w.category, DeprecationWarning)
        ]
        return value, deprecations

    def test_ce2d_results_warns_exactly_once(self):
        from repro.ce2d import results as shim

        for name in ("Verdict", "VerificationReport", "LoopReport"):
            value, deprecations = self._collect(lambda: getattr(shim, name))
            assert len(deprecations) == 1, name
            assert "repro.results" in str(deprecations[0].message)
            import repro.results

            assert value is getattr(repro.results, name)

    def test_core_stats_warns_exactly_once(self):
        from repro.core import stats as shim

        for name in ("Stopwatch", "PhaseBreakdown"):
            value, deprecations = self._collect(lambda: getattr(shim, name))
            assert len(deprecations) == 1, name
            assert "repro.telemetry" in str(deprecations[0].message)
            import repro.telemetry

            assert value is getattr(repro.telemetry, name)

    def test_unknown_attribute_raises(self):
        from repro.ce2d import results as shim

        with pytest.raises(AttributeError):
            shim.DoesNotExist  # noqa: B018
