"""The ``as_dict`` contract round-trips, and the legacy shims are gone."""

import pytest

from repro.results import (
    LoopReport,
    RunSummary,
    Verdict,
    VerificationReport,
    as_dicts,
    report_from_dict,
    verdict_tally,
)


class TestReportRoundTrip:
    @pytest.mark.parametrize("verdict", list(Verdict))
    def test_verification_report(self, verdict):
        report = VerificationReport(
            requirement="reach-sink",
            verdict=verdict,
            epoch="epoch-3",
            time=1.25,
            detail="ec 4 violated",
            witness=[3, 1, 2],
        )
        assert report_from_dict(report.as_dict()) == report

    def test_verification_report_defaults(self):
        report = VerificationReport("r", Verdict.UNKNOWN)
        assert report_from_dict(report.as_dict()) == report

    @pytest.mark.parametrize("verdict", list(Verdict))
    def test_loop_report(self, verdict):
        report = LoopReport(
            verdict=verdict, epoch="e-1", time=0.5, loop_path=[1, 2, 1]
        )
        rebuilt = report_from_dict(report.as_dict())
        assert rebuilt == report
        assert rebuilt.has_loop == (verdict is Verdict.VIOLATED)

    def test_loop_report_defaults(self):
        report = LoopReport(Verdict.SATISFIED)
        assert report_from_dict(report.as_dict()) == report

    def test_run_summary(self):
        reports = [
            VerificationReport("r1", Verdict.SATISFIED, epoch="e"),
            LoopReport(Verdict.VIOLATED, epoch="e", loop_path=[0, 1, 0]),
        ]
        summary = RunSummary(
            system="flash",
            seconds=2.5,
            verdicts=verdict_tally(reports),
            model_stats={"ecs": 12},
            reports=reports,
            metrics={"imt.blocks": 3},
        )
        assert RunSummary.from_dict(summary.as_dict()) == summary

    def test_as_dicts_matches_individual(self):
        reports = [
            LoopReport(Verdict.SATISFIED),
            VerificationReport("r", Verdict.VIOLATED),
        ]
        assert as_dicts(reports) == [r.as_dict() for r in reports]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            report_from_dict({"kind": "mystery"})


class TestShimsRemoved:
    """The PR 1 alias modules are gone; the canonical paths answer."""

    def test_ce2d_results_module_removed(self):
        with pytest.raises(ImportError):
            import repro.ce2d.results  # noqa: F401

    def test_core_stats_module_removed(self):
        with pytest.raises(ImportError):
            import repro.core.stats  # noqa: F401

    def test_canonical_homes_answer(self):
        import repro.results
        import repro.telemetry

        for name in ("Verdict", "VerificationReport", "LoopReport", "Report"):
            assert hasattr(repro.results, name), name
        for name in ("Stopwatch", "PhaseBreakdown"):
            assert hasattr(repro.telemetry, name), name
