"""Unit and property tests for the ROBDD engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.engine import BDD, FALSE, TRUE

N_VARS = 6


@pytest.fixture()
def bdd():
    return BDD(N_VARS)


def brute_force(bdd, node):
    """Truth table of a node as a frozenset of assignments (as bitmasks)."""
    result = set()
    for m in range(1 << N_VARS):
        assignment = {i: bool((m >> i) & 1) for i in range(N_VARS)}
        if bdd.evaluate(node, assignment):
            result.add(m)
    return frozenset(result)


@st.composite
def bdd_exprs(draw, depth=0):
    """Random boolean expression trees evaluated into a shared BDD."""
    if depth >= 3 or draw(st.booleans()):
        return ("var", draw(st.integers(0, N_VARS - 1)))
    op = draw(st.sampled_from(["and", "or", "not", "xor"]))
    if op == "not":
        return ("not", draw(bdd_exprs(depth=depth + 1)))
    return (op, draw(bdd_exprs(depth=depth + 1)), draw(bdd_exprs(depth=depth + 1)))


def build(bdd, expr):
    if expr[0] == "var":
        return bdd.ith_var(expr[1])
    if expr[0] == "not":
        return bdd.negate(build(bdd, expr[1]))
    a, b = build(bdd, expr[1]), build(bdd, expr[2])
    if expr[0] == "and":
        return bdd.apply_and(a, b)
    if expr[0] == "or":
        return bdd.apply_or(a, b)
    return bdd.apply_xor(a, b)


def eval_expr(expr, assignment):
    if expr[0] == "var":
        return assignment[expr[1]]
    if expr[0] == "not":
        return not eval_expr(expr[1], assignment)
    a, b = eval_expr(expr[1], assignment), eval_expr(expr[2], assignment)
    if expr[0] == "and":
        return a and b
    if expr[0] == "or":
        return a or b
    return a != b


class TestBasics:
    def test_terminals(self, bdd):
        assert bdd.apply_and(TRUE, FALSE) == FALSE
        assert bdd.apply_or(TRUE, FALSE) == TRUE
        assert bdd.negate(TRUE) == FALSE
        assert bdd.negate(FALSE) == TRUE

    def test_var_and_negation_involution(self, bdd):
        x = bdd.ith_var(2)
        assert bdd.negate(bdd.negate(x)) == x

    def test_idempotence(self, bdd):
        x = bdd.ith_var(0)
        assert bdd.apply_and(x, x) == x
        assert bdd.apply_or(x, x) == x

    def test_excluded_middle(self, bdd):
        x = bdd.ith_var(3)
        assert bdd.apply_or(x, bdd.negate(x)) == TRUE
        assert bdd.apply_and(x, bdd.negate(x)) == FALSE

    def test_canonical_hash_consing(self, bdd):
        a = bdd.apply_and(bdd.ith_var(0), bdd.ith_var(1))
        b = bdd.apply_and(bdd.ith_var(1), bdd.ith_var(0))
        assert a == b

    def test_var_out_of_range(self, bdd):
        with pytest.raises(IndexError):
            bdd.ith_var(N_VARS)
        with pytest.raises(IndexError):
            bdd.ith_var(-1)

    def test_ite(self, bdd):
        f, g, h = bdd.ith_var(0), bdd.ith_var(1), bdd.ith_var(2)
        result = bdd.ite(f, g, h)
        for m in range(8):
            a = {i: bool((m >> i) & 1) for i in range(3)}
            expected = a[1] if a[0] else a[2]
            assert bdd.evaluate(result, a) == expected


class TestCube:
    def test_cube_matches_apply_chain(self, bdd):
        lits = [(0, True), (3, False), (5, True)]
        cube = bdd.cube(lits)
        chain = TRUE
        for var, val in lits:
            chain = bdd.apply_and(chain, bdd.literal(var, val))
        assert cube == chain

    def test_empty_cube_is_true(self, bdd):
        assert bdd.cube([]) == TRUE

    def test_duplicate_raises(self, bdd):
        with pytest.raises(ValueError):
            bdd.cube([(1, True), (1, False)])


class TestSatCount:
    def test_terminal_counts(self, bdd):
        assert bdd.sat_count(FALSE) == 0
        assert bdd.sat_count(TRUE) == 1 << N_VARS

    def test_single_var(self, bdd):
        assert bdd.sat_count(bdd.ith_var(0)) == 1 << (N_VARS - 1)
        assert bdd.sat_count(bdd.ith_var(N_VARS - 1)) == 1 << (N_VARS - 1)

    def test_cube_count(self, bdd):
        cube = bdd.cube([(1, True), (4, False)])
        assert bdd.sat_count(cube) == 1 << (N_VARS - 2)

    @given(bdd_exprs())
    @settings(max_examples=60, deadline=None)
    def test_sat_count_matches_brute_force(self, expr):
        bdd = BDD(N_VARS)
        node = build(bdd, expr)
        assert bdd.sat_count(node) == len(brute_force(bdd, node))


class TestSemantics:
    @given(bdd_exprs())
    @settings(max_examples=80, deadline=None)
    def test_evaluation_matches_expression(self, expr):
        bdd = BDD(N_VARS)
        node = build(bdd, expr)
        for m in range(0, 1 << N_VARS, 5):
            assignment = {i: bool((m >> i) & 1) for i in range(N_VARS)}
            assert bdd.evaluate(node, assignment) == eval_expr(expr, assignment)

    @given(bdd_exprs(), bdd_exprs())
    @settings(max_examples=40, deadline=None)
    def test_de_morgan(self, e1, e2):
        bdd = BDD(N_VARS)
        a, b = build(bdd, e1), build(bdd, e2)
        lhs = bdd.negate(bdd.apply_and(a, b))
        rhs = bdd.apply_or(bdd.negate(a), bdd.negate(b))
        assert lhs == rhs

    @given(bdd_exprs(), bdd_exprs())
    @settings(max_examples=40, deadline=None)
    def test_diff_definition(self, e1, e2):
        bdd = BDD(N_VARS)
        a, b = build(bdd, e1), build(bdd, e2)
        assert bdd.apply_diff(a, b) == bdd.apply_and(a, bdd.negate(b))


class TestAnalysis:
    def test_support(self, bdd):
        f = bdd.apply_or(bdd.ith_var(1), bdd.apply_and(bdd.ith_var(3), bdd.ith_var(5)))
        assert bdd.support(f) == (1, 3, 5)
        assert bdd.support(TRUE) == ()

    def test_restrict(self, bdd):
        f = bdd.apply_and(bdd.ith_var(0), bdd.ith_var(1))
        assert bdd.restrict(f, {0: True}) == bdd.ith_var(1)
        assert bdd.restrict(f, {0: False}) == FALSE

    def test_exists(self, bdd):
        f = bdd.apply_and(bdd.ith_var(0), bdd.ith_var(1))
        assert bdd.exists(f, [0]) == bdd.ith_var(1)
        assert bdd.exists(f, [0, 1]) == TRUE

    def test_any_assignment(self, bdd):
        f = bdd.cube([(2, True), (4, False)])
        assignment = bdd.any_assignment(f)
        assert assignment is not None
        assert bdd.evaluate(f, assignment)
        assert bdd.any_assignment(FALSE) is None

    def test_iter_cubes_covers_function(self, bdd):
        f = bdd.apply_or(bdd.ith_var(0), bdd.ith_var(2))
        cover = FALSE
        for cube in bdd.iter_cubes(f):
            cover = bdd.apply_or(cover, bdd.cube(list(cube.items())))
        assert cover == f

    def test_node_count(self, bdd):
        assert bdd.node_count(TRUE) == 0
        assert bdd.node_count(bdd.ith_var(0)) == 1
        chain = bdd.cube([(i, True) for i in range(4)])
        assert bdd.node_count(chain) == 4

    def test_implies(self, bdd):
        narrow = bdd.cube([(0, True), (1, True)])
        wide = bdd.ith_var(0)
        assert bdd.implies(narrow, wide)
        assert not bdd.implies(wide, narrow)
