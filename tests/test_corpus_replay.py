"""Deterministic replay of the checked-in regression corpus.

Every scenario under ``tests/corpus/`` — shrunken divergence reproducers
and seeded edge cases — is replayed through the full differential runner
on every test run.  A fixed divergence can therefore never silently come
back, and each case must stay fast (< 1 s) so the corpus scales.
"""

import time
from pathlib import Path

import pytest

from repro.difftest import DifferentialRunner
from repro.difftest.corpus import iter_corpus, load_scenario, save_scenario

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_populated():
    assert len(CORPUS) >= 3, "expected at least 3 checked-in scenarios"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_scenario_replays_clean(path):
    scenario = load_scenario(path)
    start = time.perf_counter()
    result = DifferentialRunner().run(scenario)
    elapsed = time.perf_counter() - start
    assert result.ok, (scenario.name, result.divergences)
    assert elapsed < 1.0, f"{scenario.name} took {elapsed:.2f}s (budget 1s)"


def test_corpus_files_are_canonical(tmp_path):
    """Checked-in files match their canonical serialised form exactly."""
    for path, scenario in iter_corpus(CORPUS_DIR):
        resaved = save_scenario(scenario, tmp_path)
        assert path.read_text() == resaved.read_text(), path.name


def test_save_round_trips(tmp_path):
    _, scenario = next(iter_corpus(CORPUS_DIR))
    saved = save_scenario(scenario, tmp_path)
    assert load_scenario(saved).as_dict() == scenario.as_dict()
