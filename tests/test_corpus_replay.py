"""Deterministic replay of the checked-in regression corpus.

Every file under ``tests/corpus/`` is replayed on each test run — plain
scenarios through the full differential runner, chaos cases
(``"kind": "chaos"`` payloads) through the fault-injecting
:class:`~repro.difftest.chaos.ChaosRunner`, interleave cases
(``"kind": "interleave"`` payloads) through the order-exploring
:class:`~repro.difftest.interleave.InterleaveRunner` — so a fixed
divergence can never silently come back.  Each case must stay fast
(< 1 s) so the corpus scales.
"""

import json
import time
from pathlib import Path

import pytest

from repro.difftest import ChaosRunner, DifferentialRunner, InterleaveRunner
from repro.difftest.corpus import (
    is_chaos_payload,
    is_interleave_payload,
    iter_chaos_corpus,
    iter_corpus,
    iter_interleave_corpus,
    load_chaos_case,
    load_interleave_case,
    load_scenario,
    save_chaos_case,
    save_interleave_case,
    save_scenario,
)

CORPUS_DIR = Path(__file__).parent / "corpus"


def _split_corpus():
    plain, chaos, interleave = [], [], []
    for path in sorted(CORPUS_DIR.glob("*.json")):
        data = json.loads(path.read_text(encoding="utf-8"))
        if is_chaos_payload(data):
            chaos.append(path)
        elif is_interleave_payload(data):
            interleave.append(path)
        else:
            plain.append(path)
    return plain, chaos, interleave


CORPUS, CHAOS_CORPUS, INTERLEAVE_CORPUS = _split_corpus()


def test_corpus_is_populated():
    assert len(CORPUS) >= 3, "expected at least 3 checked-in scenarios"
    assert len(CHAOS_CORPUS) >= 2, "expected at least 2 chaos cases"
    assert len(INTERLEAVE_CORPUS) >= 2, "expected at least 2 interleave cases"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_scenario_replays_clean(path):
    scenario = load_scenario(path)
    start = time.perf_counter()
    result = DifferentialRunner().run(scenario)
    elapsed = time.perf_counter() - start
    assert result.ok, (scenario.name, result.divergences)
    assert elapsed < 1.0, f"{scenario.name} took {elapsed:.2f}s (budget 1s)"


@pytest.mark.chaos
@pytest.mark.parametrize("path", CHAOS_CORPUS, ids=lambda p: p.stem)
def test_chaos_case_converges(path):
    """The self-healing property, pinned: the recorded faulty stream
    through supervised ingestion still matches the clean-stream oracle."""
    case = load_chaos_case(path)
    start = time.perf_counter()
    result = ChaosRunner.for_case(case).run(case.scenario)
    elapsed = time.perf_counter() - start
    assert result.ok, (case.name, result.divergences)
    # The recipe must actually inject something, or the case is inert.
    assert sum(result.stats["faults"].values()) >= 1, case.name
    assert elapsed < 1.0, f"{case.name} took {elapsed:.2f}s (budget 1s)"


@pytest.mark.parametrize("path", INTERLEAVE_CORPUS, ids=lambda p: p.stem)
def test_interleave_case_replays_clean(path):
    """Every explored order agrees with the oracle in every intermediate
    state, and the POR soundness self-check (when it runs) passes."""
    case = load_interleave_case(path)
    runner = InterleaveRunner()
    start = time.perf_counter()
    result = runner.run_case(case)
    elapsed = time.perf_counter() - start
    assert result.ok, (case.name, result.divergences)
    assert runner.last_report.self_check in ("passed", "skipped")
    assert elapsed < 1.0, f"{case.name} took {elapsed:.2f}s (budget 1s)"


def test_interleave_corpus_pins_measured_pruning():
    """The disjoint-block case pins POR effectiveness: 3! valid orders,
    one explored — if reduction stops pruning, this fails loudly."""
    path = CORPUS_DIR / "interleave_disjoint_prefixes.json"
    runner = InterleaveRunner()
    result = runner.run_case(load_interleave_case(path))
    assert result.ok
    report = runner.last_report
    assert report.orders_possible == 6
    assert report.orders_explored == 1


def test_interleave_corpus_pins_order_dependence():
    """The transient-loop case must stay order-dependent: its two orders
    produce different intermediate verdict sequences."""
    path = CORPUS_DIR / "interleave_transient_loop_min.json"
    runner = InterleaveRunner()
    result = runner.run_case(load_interleave_case(path))
    assert result.ok
    report = runner.last_report
    assert report.order_dependent is True
    assert report.orders_explored == 2


def test_corpus_files_are_canonical(tmp_path):
    """Checked-in files match their canonical serialised form exactly."""
    seen = set()
    for path, scenario in iter_corpus(CORPUS_DIR):
        resaved = save_scenario(scenario, tmp_path)
        assert path.read_text() == resaved.read_text(), path.name
        seen.add(path)
    for path, case in iter_chaos_corpus(CORPUS_DIR):
        resaved = save_chaos_case(case, tmp_path)
        assert path.read_text() == resaved.read_text(), path.name
        seen.add(path)
    for path, case in iter_interleave_corpus(CORPUS_DIR):
        resaved = save_interleave_case(case, tmp_path)
        assert path.read_text() == resaved.read_text(), path.name
        seen.add(path)
    assert seen == set(CORPUS) | set(CHAOS_CORPUS) | set(INTERLEAVE_CORPUS)


def test_save_round_trips(tmp_path):
    _, scenario = next(iter_corpus(CORPUS_DIR))
    saved = save_scenario(scenario, tmp_path)
    assert load_scenario(saved).as_dict() == scenario.as_dict()


def test_chaos_save_round_trips(tmp_path):
    _, case = next(iter_chaos_corpus(CORPUS_DIR))
    saved = save_chaos_case(case, tmp_path)
    assert load_chaos_case(saved).as_dict() == case.as_dict()


def test_interleave_save_round_trips(tmp_path):
    _, case = next(iter_interleave_corpus(CORPUS_DIR))
    saved = save_interleave_case(case, tmp_path)
    assert load_interleave_case(saved).as_dict() == case.as_dict()
