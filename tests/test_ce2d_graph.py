"""Tests for verification graphs and decremental reachability (DGQ)."""

import random

import pytest

from repro.ce2d.reachability import DgqReachability, ModelTraversal
from repro.ce2d.verification_graph import VerificationGraph
from repro.dataplane.rule import DROP
from repro.network.generators import figure3_example
from repro.spec.ast import SelectorContext
from repro.spec.dfa import compile_path_set
from repro.spec.parser import parse_path_set


@pytest.fixture()
def topo():
    return figure3_example()


def build_graph(topo, expression, sources=("S",)):
    automaton = compile_path_set(parse_path_set(expression))
    return VerificationGraph(
        topo,
        automaton,
        [topo.id_of(s) for s in sources],
        SelectorContext(),
    )


class TestVerificationGraph:
    def test_initial_reachability(self, topo):
        graph = build_graph(topo, "S .* D")
        assert graph.accept_reachable()
        assert graph.num_nodes > 0
        assert all(node[0] == topo.id_of("S") for node in graph.sources)

    def test_waypoint_graph(self, topo):
        graph = build_graph(topo, "S .* [W|Y] .* D")
        assert graph.accept_reachable()
        # Accepting nodes are D-states whose automaton passed a waypoint.
        assert graph.accept_devices() == {topo.id_of("D")}

    def test_dead_source_prunes(self, topo):
        graph = build_graph(topo, "A .* D")  # source S never matches 'A'
        # Built with source S: the automaton dies immediately.
        automaton = compile_path_set(parse_path_set("A .* D"))
        graph = VerificationGraph(
            topo, automaton, [topo.id_of("S")], SelectorContext()
        )
        assert not graph.accept_reachable()

    def test_prune_device_to_action(self, topo):
        graph = build_graph(topo, "S .* D")
        s = topo.id_of("S")
        w = topo.id_of("W")
        removed = graph.prune_device(s, w)  # S forwards only to W
        assert removed
        for node, succs in graph.out_edges.items():
            if node[0] == s:
                assert all(succ[0] == w for succ in succs)

    def test_prune_drop_removes_all(self, topo):
        graph = build_graph(topo, "S .* D")
        graph.prune_device(topo.id_of("S"), DROP)
        assert not graph.accept_reachable()

    def test_clone_is_independent(self, topo):
        graph = build_graph(topo, "S .* D")
        copy = graph.clone()
        copy.prune_device(topo.id_of("S"), DROP)
        assert graph.accept_reachable()
        assert not copy.accept_reachable()

    def test_synced_accept_search(self, topo):
        graph = build_graph(topo, "S .* D")
        names = ["S", "W", "C", "D"]
        ids = [topo.id_of(n) for n in names]
        # Pin each device on the path to the next hop.
        for u, v in zip(ids, ids[1:]):
            graph.prune_device(u, v)
        path = graph.synced_accept_search(set(ids))
        assert path is not None
        assert [topo.name_of(d) for d, _ in path] == names
        # Without S synced, no fully-synced path exists.
        assert graph.synced_accept_search(set(ids[1:])) is None


class TestDgqAgainstTraversal:
    def test_simple_deletion_sequence(self, topo):
        graph = build_graph(topo, "S .* D")
        dgq = DgqReachability(graph)
        assert dgq.accept_reachable()
        removed = graph.prune_device(topo.id_of("S"), topo.id_of("W"))
        dgq.delete_edges(removed)
        assert dgq.accept_reachable() == graph.accept_reachable()
        removed = graph.prune_device(topo.id_of("W"), DROP)
        dgq.delete_edges(removed)
        assert not dgq.accept_reachable()
        assert dgq.accept_reachable() == graph.accept_reachable()

    def test_reachable_accepting_sets_agree(self, topo):
        graph = build_graph(topo, "S .* [W|Y] .* D")
        mirror = graph.clone()
        dgq = DgqReachability(graph)
        mt = ModelTraversal(mirror)
        rng = random.Random(3)
        devices = [topo.id_of(n) for n in ["S", "A", "B", "E", "W", "Y", "C"]]
        for device in devices:
            nbrs = sorted(topo.neighbors(device))
            action = rng.choice(nbrs + [DROP])
            dgq.delete_edges(graph.prune_device(device, action))
            mirror.prune_device(device, action)
            assert dgq.reachable_accepting() == mt.reachable_accepting(), (
                topo.name_of(device),
                action,
            )

    def test_randomized_agreement(self, topo):
        rng = random.Random(11)
        for trial in range(25):
            graph = build_graph(topo, "S .* D")
            mirror = graph.clone()
            dgq = DgqReachability(graph)
            mt = ModelTraversal(mirror)
            order = [topo.id_of(n) for n in ["S", "A", "B", "E", "W", "Y", "C", "D"]]
            rng.shuffle(order)
            for device in order:
                nbrs = sorted(topo.neighbors(device))
                action = rng.choice(nbrs + [DROP, DROP])
                dgq.delete_edges(graph.prune_device(device, action))
                mirror.prune_device(device, action)
                assert dgq.accept_reachable() == mt.accept_reachable(), trial

    def test_num_reachable_shrinks(self, topo):
        graph = build_graph(topo, "S .* D")
        dgq = DgqReachability(graph)
        before = dgq.num_reachable
        dgq.delete_edges(graph.prune_device(topo.id_of("A"), DROP))
        assert dgq.num_reachable <= before
