"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--topology", "internet2", "--out", "x.jsonl"]
        )
        assert args.command == "generate"
        assert args.fib == "apsp"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["verify", "--trace", "t", "--engine", "nope"]
            )


class TestGenerateVerifyRoundtrip:
    def test_generate_then_verify_flash(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        assert main(
            ["generate", "--topology", "internet2", "--out", trace]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert main(["verify", "--topology", "internet2", "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert "no violations" in out

    def test_verify_with_baselines(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        main(["generate", "--topology", "internet2", "--out", trace])
        capsys.readouterr()
        for engine in ("apkeep", "deltanet"):
            assert main(
                [
                    "verify",
                    "--topology",
                    "internet2",
                    "--trace",
                    trace,
                    "--engine",
                    engine,
                ]
            ) == 0
            assert "model built" in capsys.readouterr().out

    def test_insert_then_delete_flag(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        main(
            [
                "generate",
                "--topology",
                "internet2",
                "--out",
                trace,
                "--insert-then-delete",
            ]
        )
        lines = open(trace).read().strip().splitlines()
        assert sum('"op":"delete"' in l for l in lines) == len(lines) // 2

    def test_unknown_topology_is_error(self, tmp_path, capsys):
        assert main(
            ["generate", "--topology", "nope", "--out", str(tmp_path / "x")]
        ) == 2
        assert "unknown topology" in capsys.readouterr().err


class TestSimulate:
    def test_clean_network_exits_zero(self, capsys):
        assert main(["simulate", "--topology", "internet2"]) == 0
        assert "FIB batches" in capsys.readouterr().out

    def test_buggy_network_exits_nonzero(self, capsys):
        code = main(
            ["simulate", "--topology", "internet2", "--buggy", "kans"]
        )
        assert code == 1
        assert "violated" in capsys.readouterr().out

    def test_link_failure_flag(self, capsys):
        assert main(
            ["simulate", "--topology", "internet2", "--fail-link", "chic-kans"]
        ) == 0


class TestAnalyze:
    def test_analyze_outputs_summary(self, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        main(["generate", "--topology", "internet2", "--out", trace])
        capsys.readouterr()
        assert main(
            [
                "analyze",
                "--topology",
                "internet2",
                "--trace",
                trace,
                "--trace-from",
                "seat",
                "--trace-dst",
                "8",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "equivalence classes" in out
        assert "inverse model" in out
        assert "[delivered]" in out

    def test_analyze_reports_blackholes_for_empty_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "empty.jsonl")
        open(trace, "w").close()
        assert main(
            ["analyze", "--topology", "internet2", "--trace", trace]
        ) == 0
        out = capsys.readouterr().out
        assert "blackholes" in out
