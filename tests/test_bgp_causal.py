"""Tests for the BGP-like path-vector substrate and Appendix-D.1 causal
convergence detection."""

import pytest

from repro.ce2d.causal import CausalConvergenceDetector
from repro.results import Verdict
from repro.dataplane.rule import DROP
from repro.errors import DispatchError
from repro.flash import Flash
from repro.headerspace.fields import dst_only_layout
from repro.network.generators import internet2, line, ring
from repro.routing.bgp import BgpSimulation

LAYOUT = dst_only_layout(8)
PREFIX = (0x40, 4)


class TestBgpProtocol:
    def test_announcement_propagates(self):
        topo = line(4)
        sim = BgpSimulation(topo, LAYOUT)
        sim.announce_prefix(0, PREFIX)
        sim.run()
        # Every other router ends with a FIB entry toward the origin.
        for router in (1, 2, 3):
            rule = sim.nodes[router].fib[PREFIX]
            assert rule.action == router - 1

    def test_best_path_prefers_shorter(self):
        topo = ring(4)  # node 2 has two 2-hop paths to 0
        sim = BgpSimulation(topo, LAYOUT)
        sim.announce_prefix(0, PREFIX)
        sim.run()
        assert sim.nodes[1].fib[PREFIX].action == 0
        assert sim.nodes[3].fib[PREFIX].action == 0
        assert sim.nodes[2].fib[PREFIX].action in (1, 3)

    def test_withdrawal_clears_fibs(self):
        topo = line(3)
        sim = BgpSimulation(topo, LAYOUT)
        sim.announce_prefix(0, PREFIX)
        sim.run()
        sim.withdraw_prefix(0, PREFIX)
        sim.run()
        assert PREFIX not in sim.nodes[1].fib
        assert PREFIX not in sim.nodes[2].fib

    def test_loop_prevention_via_as_path(self):
        topo = ring(3)
        sim = BgpSimulation(topo, LAYOUT)
        sim.announce_prefix(0, PREFIX)
        sim.run()
        # No router points away from the origin.
        assert sim.nodes[1].fib[PREFIX].action == 0
        assert sim.nodes[2].fib[PREFIX].action == 0

    def test_unknown_router_rejected(self):
        topo = line(2)
        sim = BgpSimulation(topo, LAYOUT)
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            sim.announce_prefix(99, PREFIX)


class TestCausalConvergence:
    def test_event_converges_exactly_at_quiescence(self):
        topo = ring(4)
        sim = BgpSimulation(topo, LAYOUT)
        detector = CausalConvergenceDetector()
        progression = []
        sim.add_collector(
            lambda rec: progression.append(
                (rec.time, detector.observe(rec) is not None)
            )
        )
        root = sim.announce_prefix(0, PREFIX)
        sim.run()
        assert detector.is_converged(root)
        # Converged exactly once, on the last record.
        completions = [done for _, done in progression if done]
        assert len(completions) == 1
        assert progression[-1][1]

    def test_two_events_tracked_independently(self):
        topo = line(3)
        sim = BgpSimulation(topo, LAYOUT)
        detector = CausalConvergenceDetector()
        sim.add_collector(detector.observe)
        root_a = sim.announce_prefix(0, (0x00, 4))
        sim.run()
        root_b = sim.announce_prefix(2, (0x80, 4))
        sim.run()
        assert detector.is_converged(root_a)
        assert detector.is_converged(root_b)
        updates_a = detector.updates_of(root_a)
        assert updates_a
        assert all(u.epoch == root_a for u in updates_a)

    def test_mid_wave_not_converged(self):
        topo = line(5)
        sim = BgpSimulation(topo, LAYOUT)
        detector = CausalConvergenceDetector()
        sim.add_collector(detector.observe)
        root = sim.announce_prefix(0, PREFIX)
        sim.run(until=sim.message_delay * 1.5)  # only one hop propagated
        assert not detector.is_converged(root)
        assert detector.pending_events() == [root]
        sim.run()
        assert detector.is_converged(root)

    def test_late_record_rejected(self):
        detector = CausalConvergenceDetector()

        class Rec:
            def __init__(self, root, consumed, emitted):
                self.root_event = root
                self.device = 0
                self.consumed = consumed
                self.emitted = emitted
                self.updates = []
                self.time = 0.0

        assert detector.observe(Rec(1, (), ())) is not None  # trivially done
        with pytest.raises(DispatchError):
            detector.observe(Rec(1, (), ()))

    def test_unknown_event_query(self):
        detector = CausalConvergenceDetector()
        with pytest.raises(DispatchError):
            detector.updates_of(42)

    def test_converged_callback(self):
        topo = line(3)
        sim = BgpSimulation(topo, LAYOUT)
        seen = []
        detector = CausalConvergenceDetector(on_converged=lambda s: seen.append(s.root))
        sim.add_collector(detector.observe)
        root = sim.announce_prefix(0, PREFIX)
        sim.run()
        assert seen == [root]


class TestBgpWithFlash:
    def test_converged_event_verifies_loop_free(self):
        """End to end: BGP wave → causal grouping → Flash verification."""
        topo = internet2()
        sim = BgpSimulation(topo, LAYOUT)
        flash = Flash(topo, LAYOUT, check_loops=True)
        detector = CausalConvergenceDetector()

        def feed_on_convergence(state):
            per_device = {}
            for u in state.updates:
                per_device.setdefault(u.device, []).append(u)
            reports = []
            for device in topo.switches():
                reports = flash.receive(
                    device, f"bgp-{state.root}", per_device.get(device, [])
                )
            return reports

        detector.on_converged = feed_on_convergence
        sim.add_collector(detector.observe)
        owner = topo.id_of("seat")
        sim.announce_prefix(owner, PREFIX)
        sim.run()
        verdicts = [r.verdict for r in flash.dispatcher.reports]
        assert verdicts[-1] is Verdict.SATISFIED  # loop-free converged state


class TestBgpProperties:
    """Randomized BGP: converged FIBs equal shortest-path ground truth."""

    @pytest.mark.parametrize("seed", range(8))
    def test_converged_fibs_are_shortest_paths(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(4, 7)
        from repro.network.topology import Topology

        topo = Topology()
        for i in range(n):
            topo.add_device(f"r{i}")
        for i in range(1, n):
            topo.add_link(i, rng.randrange(i))
        for _ in range(rng.randint(0, n)):
            u, v = rng.sample(range(n), 2)
            if not topo.has_link(u, v):
                topo.add_link(u, v)
        owner = rng.randrange(n)
        sim = BgpSimulation(topo, LAYOUT)
        detector = CausalConvergenceDetector()
        sim.add_collector(detector.observe)
        root = sim.announce_prefix(owner, PREFIX)
        sim.run()
        assert detector.is_converged(root)
        dist = {owner: 0}
        frontier = [owner]
        while frontier:
            nxt = []
            for u in frontier:
                for v in topo.neighbors(u):
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        nxt.append(v)
            frontier = nxt
        for router in topo.switches():
            if router == owner:
                assert PREFIX not in sim.nodes[router].fib
                continue
            hop = sim.nodes[router].fib[PREFIX].action
            assert dist[hop] == dist[router] - 1, (seed, router)

    @pytest.mark.parametrize("seed", range(4))
    def test_announce_withdraw_announce_converges(self, seed):
        topo = internet2()
        sim = BgpSimulation(topo, LAYOUT)
        detector = CausalConvergenceDetector()
        sim.add_collector(detector.observe)
        owner = topo.switches()[seed % 9]
        events = [
            sim.announce_prefix(owner, PREFIX),
        ]
        sim.run()
        events.append(sim.withdraw_prefix(owner, PREFIX))
        sim.run()
        events.append(sim.announce_prefix(owner, PREFIX))
        sim.run()
        assert all(detector.is_converged(e) for e in events)
        assert detector.pending_events() == []
        # After the final announcement every router routes again.
        for router in topo.switches():
            if router != owner:
                assert PREFIX in sim.nodes[router].fib
