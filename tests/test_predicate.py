"""Tests for the counting predicate layer."""

import pytest

from repro.bdd.predicate import Predicate, PredicateEngine


@pytest.fixture()
def engine():
    return PredicateEngine(8)


class TestPredicateAlgebra:
    def test_constants(self, engine):
        assert engine.false.is_false
        assert engine.true.is_true
        assert not engine.true.is_false

    def test_and_or_not(self, engine):
        a, b = engine.variable(0), engine.variable(1)
        assert ((a & b) | (a & ~b)) == a

    def test_difference(self, engine):
        a, b = engine.variable(0), engine.variable(1)
        assert (a - b) == (a & ~b)

    def test_xor(self, engine):
        a, b = engine.variable(2), engine.variable(3)
        assert (a ^ b) == ((a - b) | (b - a))

    def test_intersects_and_covers(self, engine):
        a = engine.variable(0)
        ab = a & engine.variable(1)
        assert a.intersects(ab)
        assert a.covers(ab)
        assert not ab.covers(a)
        assert not a.intersects(~a)

    def test_equality_is_semantic(self, engine):
        a, b = engine.variable(0), engine.variable(1)
        assert (a | b) == (b | a)
        assert hash(a | b) == hash(b | a)

    def test_truthiness_forbidden(self, engine):
        with pytest.raises(TypeError):
            bool(engine.variable(0))

    def test_cross_engine_rejected(self, engine):
        other = PredicateEngine(8)
        with pytest.raises(ValueError):
            engine.variable(0) & other.variable(0)

    def test_disj_many_conj_many(self, engine):
        vs = [engine.variable(i) for i in range(3)]
        assert engine.disj_many(vs) == (vs[0] | vs[1] | vs[2])
        assert engine.conj_many(vs) == (vs[0] & vs[1] & vs[2])

    def test_sat_count(self, engine):
        a = engine.variable(0)
        assert a.sat_count() == 1 << 7
        assert engine.true.sat_count() == 1 << 8
        assert engine.false.sat_count() == 0


class TestOpCounting:
    def test_counts_each_operation(self, engine):
        a, b = engine.variable(0), engine.variable(1)
        engine.metrics.reset()
        _ = a & b
        _ = a | b
        _ = ~a
        assert engine.metrics.conjunctions == 1
        assert engine.metrics.disjunctions == 1
        assert engine.metrics.negations == 1
        assert engine.metrics.total == 3

    def test_diff_counts_two_ops(self, engine):
        a, b = engine.variable(0), engine.variable(1)
        engine.metrics.reset()
        _ = a - b
        assert engine.metrics.total == 2

    def test_snapshot_diff(self, engine):
        a, b = engine.variable(0), engine.variable(1)
        before = engine.metrics.snapshot()
        _ = a & b
        _ = a & b
        delta = engine.metrics.diff(before)
        assert delta.conjunctions == 2
        assert delta.disjunctions == 0

    def test_extra_counters(self, engine):
        m = engine.metrics
        m.bump("atom_updates", 5)
        m.bump("atom_updates")
        assert m.extra["atom_updates"] == 6
        snap = m.snapshot()
        m.bump("atom_updates", 4)
        assert m.diff(snap).extra["atom_updates"] == 4

    def test_cube_counts_one_conjunction(self, engine):
        engine.metrics.reset()
        engine.cube([(0, True), (1, False), (2, True)])
        assert engine.metrics.conjunctions == 1

    def test_memory_estimate_grows(self, engine):
        before = engine.memory_estimate_bytes()
        engine.conj_many(engine.variable(i) for i in range(8))
        assert engine.memory_estimate_bytes() > before
