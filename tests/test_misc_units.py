"""Unit tests for smaller components and error paths."""

import time

import pytest

from repro.bdd.predicate import PredicateEngine
from repro.core.actiontree import ActionTreeStore
from repro.core.inverse_model import InverseModel
from repro.telemetry import PhaseBreakdown, Stopwatch
from repro.dataplane.fib import FibSnapshot, enumerate_headers
from repro.dataplane.rule import DROP, Rule
from repro.dataplane.update import insert
from repro.errors import ModelInvariantError, SimulationError
from repro.headerspace.fields import dst_only_layout, five_tuple_layout
from repro.headerspace.match import Match, Pattern
from repro.network.generators import figure3_example, line
from repro.routing.events import EventLoop
from repro.spec.ast import SelectorContext
from repro.spec.dfa import compile_path_set
from repro.spec.parser import parse_path_set
from repro.ce2d.verification_graph import VerificationGraph

LAYOUT = dst_only_layout(4)


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch.measure():
            time.sleep(0.01)
        with watch.measure():
            time.sleep(0.01)
        assert watch.elapsed >= 0.02

    def test_reset_returns_and_clears(self):
        watch = Stopwatch()
        with watch.measure():
            pass
        elapsed = watch.reset()
        assert elapsed >= 0
        assert watch.elapsed == 0.0

    def test_exception_still_recorded(self):
        watch = Stopwatch()
        with pytest.raises(ValueError):
            with watch.measure():
                raise ValueError
        assert watch.elapsed > 0


class TestPhaseBreakdown:
    def test_merge_and_total(self):
        a = PhaseBreakdown(map_seconds=1, reduce_seconds=2, apply_seconds=3, blocks=1)
        b = PhaseBreakdown(map_seconds=0.5, blocks=2, updates=7)
        a.merge(b)
        assert a.map_seconds == 1.5
        assert a.total_seconds == 6.5
        assert a.blocks == 3
        assert a.as_dict()["updates"] == 7


class TestEventLoopGuards:
    def test_livelock_guard(self):
        loop = EventLoop()

        def rearm():
            loop.schedule(0.0, rearm)

        loop.schedule(0.0, rearm)
        with pytest.raises(SimulationError):
            loop.run(max_events=100)

    def test_run_advances_to_until_even_when_idle(self):
        loop = EventLoop()
        loop.run(until=5.0)
        assert loop.now == 5.0


class TestEnumerateHeaders:
    def test_counts(self):
        layout = dst_only_layout(3)
        headers = list(enumerate_headers(layout))
        assert len(headers) == 8
        assert headers[5] == {"dst": 5}


class TestInverseModelInvariants:
    def test_detects_missing_coverage(self):
        engine = PredicateEngine(LAYOUT.total_bits)
        store = ActionTreeStore()
        model = InverseModel(engine, store, [0])
        # Corrupt: shrink the only EC.
        vec = next(iter(model._entries))
        model._entries[vec] = engine.variable(0)
        with pytest.raises(ModelInvariantError):
            model.check_invariants()

    def test_detects_overlap(self):
        engine = PredicateEngine(LAYOUT.total_bits)
        store = ActionTreeStore()
        model = InverseModel(engine, store, [0])
        vec = next(iter(model._entries))
        other = store.overwrite(vec, {0: 9})
        model._entries[other] = engine.variable(0)  # overlaps the full EC
        with pytest.raises(ModelInvariantError):
            model.check_invariants()

    def test_detects_empty_ec(self):
        engine = PredicateEngine(LAYOUT.total_bits)
        store = ActionTreeStore()
        model = InverseModel(engine, store, [0])
        vec = next(iter(model._entries))
        other = store.overwrite(vec, {0: 9})
        model._entries[other] = engine.false
        with pytest.raises(ModelInvariantError):
            model.check_invariants()

    def test_uncovered_header_raises(self):
        engine = PredicateEngine(LAYOUT.total_bits)
        store = ActionTreeStore()
        model = InverseModel(
            engine, store, [0], universe=engine.variable(0)
        )
        bits = {0: False, 1: False, 2: False, 3: False}
        with pytest.raises(ModelInvariantError):
            model.vector_for(bits)


class TestFiveTupleCompilation:
    def test_policy_match_semantics(self):
        layout = five_tuple_layout(4)
        engine = PredicateEngine(layout.total_bits)
        match = Match(
            {
                "dst": Pattern.prefix(0b1000, 1, 4),
                "proto": Pattern.exact(2, 2),
                "dport": Pattern.range(16, 31, 8),
            }
        )
        pred = match.to_predicate(engine, layout)
        # 8 dst values x 16 src x 1 proto x 16 dports
        assert pred.sat_count() == 8 * 16 * 1 * 16


class TestVerificationGraphGuards:
    def test_max_nodes_enforced(self):
        topo = figure3_example()
        automaton = compile_path_set(parse_path_set(". .* ."))
        with pytest.raises(MemoryError):
            VerificationGraph(
                topo,
                automaton,
                topo.switches(),
                SelectorContext(),
                max_nodes=3,
            )

    def test_counts(self):
        topo = line(3)
        automaton = compile_path_set(parse_path_set("s0 .* s2"))
        graph = VerificationGraph(
            topo, automaton, [topo.id_of("s0")], SelectorContext()
        )
        assert graph.num_nodes >= 3
        assert graph.num_edges >= 2
        clone = graph.clone()
        assert clone.num_edges == graph.num_edges
