"""Tests for the operator query layer (repro.analysis)."""

import pytest

from repro.analysis import (
    differences,
    ec_summary,
    find_blackholes,
    reachability_matrix,
    trace_header,
)
from repro.core.model_manager import ModelWriter
from repro.dataplane.rule import DROP, Rule, ecmp
from repro.dataplane.update import delete, insert
from repro.errors import ReproError
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.generators import line, ring
from repro.network.topology import Topology

LAYOUT = dst_only_layout(4)


def build_line():
    topo = line(3)
    sink = topo.add_external("sink")
    topo.add_link(2, sink)
    manager = ModelWriter(topo.switches(), LAYOUT)
    manager.submit(
        [
            insert(0, Rule(1, Match.wildcard(), 1)),
            insert(1, Rule(1, Match.wildcard(), 2)),
            insert(2, Rule(1, Match.wildcard(), sink)),
        ]
    )
    manager.flush()
    return topo, manager, sink


class TestTraceHeader:
    def test_delivery(self):
        topo, manager, sink = build_line()
        trace = trace_header(manager, topo, 0, {"dst": 5})
        assert trace.outcome == "delivered"
        assert trace.delivered_to == sink
        assert trace.path == [0, 1, 2, sink]

    def test_drop(self):
        topo, manager, sink = build_line()
        manager.submit([delete(2, Rule(1, Match.wildcard(), sink))])
        manager.flush()
        trace = trace_header(manager, topo, 0, {"dst": 5})
        assert trace.outcome == "dropped"
        assert trace.path == [0, 1, 2]

    def test_loop(self):
        topo = ring(4)
        manager = ModelWriter(topo.switches(), LAYOUT)
        manager.submit(
            [
                insert(0, Rule(1, Match.wildcard(), 1)),
                insert(1, Rule(1, Match.wildcard(), 0)),
            ]
        )
        manager.flush()
        trace = trace_header(manager, topo, 0, {"dst": 1})
        assert trace.looped


class TestReachabilityMatrix:
    def test_line_delivery(self):
        topo, manager, sink = build_line()
        matrix = reachability_matrix(manager, topo, [0, 1], [sink])
        assert matrix[(0, sink)].is_true
        assert matrix[(1, sink)].is_true

    def test_partial_space(self):
        topo, manager, sink = build_line()
        # Device 1 drops the high half.
        manager.submit(
            [insert(1, Rule(2, Match.dst_prefix(0b1000, 1, LAYOUT), DROP))]
        )
        manager.flush()
        matrix = reachability_matrix(manager, topo, [0], [sink])
        pred = matrix[(0, sink)]
        assert pred.sat_count() == 8  # only the low half delivers

    def test_ecmp_fans_out(self):
        topo = Topology()
        a = topo.add_device("a")
        b = topo.add_device("b")
        c = topo.add_device("c")
        s1 = topo.add_external("s1")
        s2 = topo.add_external("s2")
        topo.add_link(a, b)
        topo.add_link(a, c)
        topo.add_link(b, s1)
        topo.add_link(c, s2)
        manager = ModelWriter(topo.switches(), LAYOUT)
        manager.submit(
            [
                insert(a, Rule(1, Match.wildcard(), ecmp(b, c))),
                insert(b, Rule(1, Match.wildcard(), s1)),
                insert(c, Rule(1, Match.wildcard(), s2)),
            ]
        )
        manager.flush()
        matrix = reachability_matrix(manager, topo, [a], [s1, s2])
        assert matrix[(a, s1)].is_true
        assert matrix[(a, s2)].is_true


class TestBlackholes:
    def test_detects_dropping_device(self):
        topo, manager, sink = build_line()
        manager.submit(
            [insert(1, Rule(2, Match.dst_prefix(0b1000, 1, LAYOUT), DROP))]
        )
        manager.flush()
        holes = find_blackholes(manager, topo)
        assert any(h.device == 1 and h.headers() == 8 for h in holes)

    def test_scoped_to_expected_space(self):
        topo, manager, sink = build_line()
        manager.submit(
            [insert(1, Rule(2, Match.dst_prefix(0b1000, 1, LAYOUT), DROP))]
        )
        manager.flush()
        low = manager.compiler.compile(Match.dst_prefix(0, 1, LAYOUT))
        holes = find_blackholes(manager, topo, expected_delivered=low)
        assert all(h.device != 1 for h in holes)

    def test_clean_network_no_blackholes(self):
        topo, manager, sink = build_line()
        assert find_blackholes(manager, topo) == []


class TestEcSummaryAndDiff:
    def test_summary_lines(self):
        topo, manager, sink = build_line()
        lines = ec_summary(manager, topo)
        assert len(lines) == 1
        assert "|EC|=" in lines[0]

    def test_differences_between_models(self):
        topo, manager, sink = build_line()
        other = ModelWriter(topo.switches(), LAYOUT)
        other.submit(
            [
                insert(0, Rule(1, Match.wildcard(), 1)),
                insert(1, Rule(1, Match.dst_prefix(0, 1, LAYOUT), 2)),
                # High half at device 1: dropped instead of forwarded.
                insert(2, Rule(1, Match.wildcard(), sink)),
            ]
        )
        other.flush()
        diff = differences(manager, other)
        assert set(diff) == {1}
        assert diff[1].sat_count() == 8

    def test_identical_models_no_diff(self):
        topo, manager, sink = build_line()
        assert differences(manager, manager) == {}

    def test_layout_mismatch_rejected(self):
        topo, manager, sink = build_line()
        from repro.headerspace.fields import dst_src_layout

        other = ModelWriter(topo.switches(), dst_src_layout(4, 4))
        with pytest.raises(ReproError):
            differences(manager, other)
