"""Structural and algebraic invariants of the rebuilt BDD engine.

Three layers of assurance for :class:`repro.bdd.engine.BDD`:

* **Hash-consing canonicity** — after arbitrary operation streams the
  live node store contains no duplicate ``(var, low, high)`` triples, no
  redundant ``low == high`` nodes, only regular (uncomplemented) stored
  high edges, and respects the variable order.  With these invariants,
  pointer equality is function equality, which everything above the
  engine (difftest verdicts, predicate dedup) relies on.
* **ITE algebra** — the single ``ite`` primitive agrees with every
  derived form and identity the dispatcher special-cases, so no fast
  path (cube-selector graft included) can drift from the semantics.
* **Counting** — ``sat_count`` matches brute-force truth-table counts
  on small random predicates, and the engine agrees with
  :class:`~repro.bdd.reference.ReferenceBDD` on random streams.
"""

import random

import pytest

from repro.bdd.engine import BDD, FALSE, TRUE, _FREE
from repro.bdd.reference import ReferenceBDD

from .conftest import case_rng


def random_predicate(eng, rng: random.Random, num_vars: int, ops: int) -> int:
    """A random function built from the engine's own operation mix."""
    pool = [eng.literal(i, bool(rng.getrandbits(1))) for i in range(num_vars)]
    for _ in range(ops):
        a = rng.choice(pool)
        b = rng.choice(pool)
        kind = rng.randrange(5)
        if kind == 0:
            pool.append(eng.apply_and(a, b))
        elif kind == 1:
            pool.append(eng.apply_or(a, b))
        elif kind == 2:
            pool.append(eng.apply_xor(a, b))
        elif kind == 3:
            pool.append(eng.negate(a))
        else:
            pool.append(eng.ite(a, b, rng.choice(pool)))
    return pool[-1]


def random_prefix_stream(eng, rng: random.Random, num_vars: int, n: int) -> int:
    """An announce/withdraw ITE stream (drives the cube-graft fast path)."""
    p = FALSE
    for _ in range(n):
        plen = rng.randint(2, num_vars)
        cube = eng.cube(
            [(i, bool(rng.getrandbits(1))) for i in range(plen)]
        )
        p = eng.ite(cube, FALSE if rng.random() < 0.3 else TRUE, p)
    return p


def assert_canonical(eng: BDD) -> None:
    """Every live node satisfies the hash-consing invariants."""
    seen = {}
    for node in eng._live_ids():
        var = eng._var[node]
        low = eng._low[node]
        high = eng._high[node]
        assert var != _FREE
        triple = (var, low, high)
        assert triple not in seen, (
            f"duplicate node for {triple}: ids {seen[triple]} and {node}"
        )
        seen[triple] = node
        assert low != high, f"redundant node {node}: low == high == {low}"
        assert high & 1 == 0, f"node {node} stores a complemented high edge"
        for child in (low, high):
            child_node = child >> 1
            if child_node:
                assert eng._var[child_node] != _FREE, (
                    f"node {node} points at freed node {child_node}"
                )
                assert eng._var[child_node] > var, (
                    f"variable order violated: {node} (var {var}) -> "
                    f"{child_node} (var {eng._var[child_node]})"
                )


class TestCanonicity:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_op_stream_stays_canonical(self, seed):
        rng = case_rng(seed)
        eng = BDD(10)
        random_predicate(eng, rng, 10, 120)
        assert_canonical(eng)

    @pytest.mark.parametrize("seed", range(5))
    def test_prefix_stream_stays_canonical(self, seed):
        """The cube-selector graft allocates via inlined probes; make sure
        the nodes it creates obey the same canonical form as ``_mk``."""
        rng = case_rng(100 + seed)
        eng = BDD(16)
        random_prefix_stream(eng, rng, 16, 150)
        assert_canonical(eng)

    def test_canonical_after_collection(self):
        rng = case_rng(200)
        eng = BDD(12)
        keep = eng.pin(random_predicate(eng, rng, 12, 80))
        random_predicate(eng, rng, 12, 80)
        eng.collect()
        assert_canonical(eng)
        eng.unpin(keep)

    @pytest.mark.parametrize("seed", [2, 6, 13, 48])
    def test_rehash_inside_ite3_general_stays_canonical(self, seed):
        """Mid-operation unique-table rehashes must not break canonicity.

        A tiny initial table plus periodic collections (which shrink the
        table back down) force rehashes *inside* ``_ite3_general``'s
        nested ``_and`` collapses; with stale ``slots``/``mask`` aliases
        the later combine frames probed the orphaned table and created
        duplicate ``(var, low, high)`` nodes.  Seeds are pinned to
        ``random.Random`` directly (not :func:`case_rng`) because these
        exact streams reproduced the historical stale-alias bug.
        """
        rng = random.Random(seed)
        eng = BDD(16, table_capacity=8)
        pool = [eng.literal(i, bool(rng.getrandbits(1))) for i in range(16)]
        for step in range(150):
            a = rng.choice(pool)
            b = rng.choice(pool)
            c = rng.choice(pool)
            kind = rng.randrange(3)
            if kind == 0:
                pool.append(eng.apply_xor(a, b))
            elif kind == 1:
                pool.append(eng.ite(a, b, c))
            else:
                pool.append(eng.apply_or(a, b))
            if step % 25 == 24:
                for p in pool:
                    eng.pin(p)
                eng.collect()
                for p in pool:
                    eng.unpin(p)
        assert_canonical(eng)

    def test_rebuilding_existing_function_allocates_nothing(self):
        eng = BDD(8)
        rng = case_rng(300)
        p = random_prefix_stream(eng, rng, 8, 40)
        before = eng.live_node_count
        q = random_prefix_stream(eng, case_rng(300), 8, 40)
        assert q == p, "identical streams must intern to the same edge"
        assert eng.live_node_count == before


class TestIteIdentities:
    @pytest.fixture()
    def eng(self):
        return BDD(8)

    def _operands(self, eng, seed):
        rng = case_rng(seed)
        return (
            random_predicate(eng, rng, 8, 30),
            random_predicate(eng, rng, 8, 30),
            random_predicate(eng, rng, 8, 30),
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_ite_matches_derived_form(self, eng, seed):
        f, g, h = self._operands(eng, seed)
        derived = eng.apply_or(
            eng.apply_and(f, g), eng.apply_and(eng.negate(f), h)
        )
        assert eng.ite(f, g, h) == derived

    @pytest.mark.parametrize("seed", range(8))
    def test_ite_terminal_and_absorption_identities(self, eng, seed):
        f, g, h = self._operands(eng, seed)
        assert eng.ite(TRUE, g, h) == g
        assert eng.ite(FALSE, g, h) == h
        assert eng.ite(f, g, g) == g
        assert eng.ite(f, TRUE, FALSE) == f
        assert eng.ite(f, FALSE, TRUE) == eng.negate(f)
        assert eng.ite(f, g, FALSE) == eng.apply_and(f, g)
        assert eng.ite(f, TRUE, h) == eng.apply_or(f, h)
        assert eng.ite(f, g, TRUE) == eng.apply_or(eng.negate(f), g)
        assert eng.ite(f, FALSE, h) == eng.apply_and(eng.negate(f), h)
        assert eng.ite(f, eng.negate(g), g) == eng.apply_xor(f, g)

    @pytest.mark.parametrize("seed", range(8))
    def test_ite_selector_complement_symmetry(self, eng, seed):
        f, g, h = self._operands(eng, seed)
        assert eng.ite(f, g, h) == eng.ite(eng.negate(f), h, g)

    @pytest.mark.parametrize("seed", range(4))
    def test_cube_selector_graft_equals_general_path(self, eng, seed):
        """ite with a cube selector (the graft fast path) must equal the
        expanded form computed without any three-operand call."""
        rng = case_rng(400 + seed)
        g = random_predicate(eng, rng, 8, 30)
        h = random_predicate(eng, rng, 8, 30)
        for plen in (1, 3, 6, 8):
            cube = eng.cube(
                [(i, bool(rng.getrandbits(1))) for i in range(plen)]
            )
            expected = eng.apply_or(
                eng.apply_and(cube, g),
                eng.apply_and(eng.negate(cube), h),
            )
            assert eng.ite(cube, g, h) == expected
            assert eng.ite(eng.negate(cube), g, h) == eng.ite(cube, h, g)


class TestNegation:
    @pytest.mark.parametrize("seed", range(6))
    def test_involution_and_de_morgan(self, seed):
        eng = BDD(8)
        rng = case_rng(500 + seed)
        a = random_predicate(eng, rng, 8, 30)
        b = random_predicate(eng, rng, 8, 30)
        assert eng.negate(eng.negate(a)) == a
        assert eng.negate(eng.apply_and(a, b)) == eng.apply_or(
            eng.negate(a), eng.negate(b)
        )
        assert eng.negate(eng.apply_or(a, b)) == eng.apply_and(
            eng.negate(a), eng.negate(b)
        )

    def test_negation_is_constant_time_edge_flip(self):
        eng = BDD(8)
        rng = case_rng(600)
        a = random_predicate(eng, rng, 8, 40)
        before = eng.live_node_count
        assert eng.negate(a) == a ^ 1
        assert eng.live_node_count == before, "negation must allocate nothing"


class TestSatCount:
    @pytest.mark.parametrize("num_vars", [4, 8, 12])
    @pytest.mark.parametrize("seed", range(3))
    def test_satcount_matches_brute_force(self, num_vars, seed):
        eng = BDD(num_vars)
        rng = case_rng(num_vars * 1000 + seed)
        p = random_predicate(eng, rng, num_vars, 60)
        expected = sum(
            1
            for m in range(1 << num_vars)
            if eng.evaluate(p, {i: bool((m >> i) & 1) for i in range(num_vars)})
        )
        assert eng.sat_count(p) == expected

    def test_satcount_memo_survives_new_allocations(self):
        eng = BDD(10)
        rng = case_rng(700)
        p = random_prefix_stream(eng, rng, 10, 30)
        first = eng.sat_count(p)
        random_predicate(eng, rng, 10, 40)  # allocate more nodes
        assert eng.sat_count(p) == first


class TestBulkIte:
    """The batched (numpy-vectorized) ITE path is bit-identical to the
    scalar recursion — same edges, same canonical store afterwards."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_batches_match_scalar(self, seed):
        rng = case_rng(900 + seed)
        eng = BDD(10)
        pool = [random_predicate(eng, rng, 10, 25) for _ in range(12)]
        triples = [
            (rng.choice(pool), rng.choice(pool), rng.choice(pool))
            for _ in range(40)
        ]
        expected = [eng.ite(f, g, h) for f, g, h in triples]
        assert eng.bulk_ite(triples) == expected
        assert eng.bulk_ite(triples, force_scalar=True) == expected
        assert_canonical(eng)

    def test_vectorized_and_scalar_expansion_agree(self):
        """Same batch through both down-sweeps on fresh engines — the
        numpy gather must produce the same store as the pure-Python one."""
        results = []
        for force in (False, True):
            rng = case_rng(950)
            eng = BDD(10)
            pool = [random_predicate(eng, rng, 10, 25) for _ in range(10)]
            triples = [
                (rng.choice(pool), rng.choice(pool), rng.choice(pool))
                for _ in range(30)
            ]
            results.append(
                [eng.sat_count(r) for r in eng.bulk_ite(triples, force_scalar=force)]
            )
        assert results[0] == results[1]

    def test_empty_batch(self):
        eng = BDD(8)
        assert eng.bulk_ite([]) == []
        assert eng.bulk_ite([], force_scalar=True) == []

    def test_single_triple_and_terminals(self):
        eng = BDD(8)
        rng = case_rng(960)
        f = random_predicate(eng, rng, 8, 20)
        g = random_predicate(eng, rng, 8, 20)
        h = random_predicate(eng, rng, 8, 20)
        assert eng.bulk_ite([(f, g, h)]) == [eng.ite(f, g, h)]
        # terminal selectors and collapsed branches resolve without any
        # frontier expansion
        batch = [
            (TRUE, g, h),
            (FALSE, g, h),
            (f, g, g),
            (f, TRUE, FALSE),
            (f, FALSE, TRUE),
            (f, f, h),
            (f, g, f),
        ]
        expected = [eng.ite(a, b, c) for a, b, c in batch]
        assert eng.bulk_ite(batch) == expected

    def test_duplicate_triples_share_work(self):
        eng = BDD(8)
        rng = case_rng(970)
        f = random_predicate(eng, rng, 8, 20)
        g = random_predicate(eng, rng, 8, 20)
        h = random_predicate(eng, rng, 8, 20)
        out = eng.bulk_ite([(f, g, h)] * 5)
        assert out == [eng.ite(f, g, h)] * 5

    @pytest.mark.parametrize("seed", range(3))
    def test_gc_interleaved_stress(self, seed):
        """Alternating bulk batches with collections: results pinned as
        roots must survive, later batches must not resurrect freed ids,
        and the store stays canonical throughout."""
        rng = case_rng(980 + seed)
        eng = BDD(10)
        kept = []  # (edge, sat_count) pairs pinned across collections
        for round_no in range(6):
            pool = [random_predicate(eng, rng, 10, 15) for _ in range(6)]
            pool.extend(edge for edge, _ in kept)
            triples = [
                (rng.choice(pool), rng.choice(pool), rng.choice(pool))
                for _ in range(20)
            ]
            results = eng.bulk_ite(triples, force_scalar=bool(round_no % 2))
            expected = [eng.ite(f, g, h) for f, g, h in triples]
            assert results == expected
            keep = results[rng.randrange(len(results))]
            eng.pin(keep)
            kept.append((keep, eng.sat_count(keep)))
            eng.collect()
            assert_canonical(eng)
            for edge, count in kept:
                assert eng.sat_count(edge) == count
        for edge, _ in kept:
            eng.unpin(edge)


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(4))
    def test_same_stream_same_functions(self, seed):
        """Replay one operation stream through both engines; every
        intermediate must count and evaluate identically."""
        num_vars = 10
        new = BDD(num_vars)
        ref = ReferenceBDD(num_vars)
        rng = case_rng(800 + seed)
        script = []
        for _ in range(80):
            kind = rng.randrange(5)
            a, b, c = (
                rng.randrange(120),
                rng.randrange(120),
                rng.randrange(120),
            )
            script.append((kind, a, b, c))

        def replay(eng):
            pool = [eng.ith_var(i) for i in range(num_vars)]
            for kind, a, b, c in script:
                x = pool[a % len(pool)]
                y = pool[b % len(pool)]
                z = pool[c % len(pool)]
                if kind == 0:
                    pool.append(eng.apply_and(x, y))
                elif kind == 1:
                    pool.append(eng.apply_or(x, y))
                elif kind == 2:
                    pool.append(eng.apply_xor(x, y))
                elif kind == 3:
                    pool.append(eng.negate(x))
                else:
                    pool.append(eng.ite(x, y, z))
            return pool

        new_pool = replay(new)
        ref_pool = replay(ref)
        probes = [
            {i: bool(rng.getrandbits(1)) for i in range(num_vars)}
            for _ in range(16)
        ]
        for u, v in zip(new_pool, ref_pool):
            assert new.sat_count(u) == ref.sat_count(v)
            for assignment in probes:
                assert new.evaluate(u, assignment) == ref.evaluate(v, assignment)
