"""Bounded-LRU regression tests for :class:`MatchCompiler`.

The compiler's memo used to grow without bound: every distinct match in
a churn stream is a new key, and each cached predicate is a live handle
rooting BDD nodes against collection.  These tests pin the cap, the
eviction order, and the telemetry that tracks both.
"""

import pytest

from repro.bdd.predicate import PredicateEngine
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match, MatchCompiler

LAYOUT = dst_only_layout(10)


def fresh_compiler(max_entries=8):
    engine = PredicateEngine(LAYOUT.total_bits)
    return MatchCompiler(engine, LAYOUT, max_entries=max_entries), engine


def prefix(value, length=10):
    return Match.dst_prefix(value, length, LAYOUT)


def test_cache_never_exceeds_cap():
    compiler, engine = fresh_compiler(max_entries=8)
    for value in range(50):
        compiler.compile(prefix(value))
        assert len(compiler) <= 8
    assert engine.registry.value("match.cache.size") == 8
    assert engine.registry.value("match.cache.evictions") == 42


def test_eviction_is_lru_not_fifo():
    compiler, _ = fresh_compiler(max_entries=3)
    a, b, c, d = (prefix(v) for v in range(4))
    compiler.compile(a)
    compiler.compile(b)
    compiler.compile(c)
    compiler.compile(a)  # refresh a: b is now the oldest
    compiler.compile(d)  # evicts b
    assert a in compiler._cache
    assert b not in compiler._cache
    assert c in compiler._cache
    assert d in compiler._cache


def test_hit_returns_same_handle_and_skips_recompile():
    compiler, engine = fresh_compiler()
    first = compiler.compile(prefix(5))
    ops_after_first = engine.metrics.total
    second = compiler.compile(prefix(5))
    assert second is first
    assert engine.metrics.total == ops_after_first


def test_evicted_entry_recompiles_to_equal_predicate():
    compiler, _ = fresh_compiler(max_entries=2)
    original = compiler.compile(prefix(1))
    compiler.compile(prefix(2))
    compiler.compile(prefix(3))  # evicts prefix(1)
    assert prefix(1) not in compiler._cache
    assert compiler.compile(prefix(1)) == original


def test_size_gauge_tracks_current_occupancy():
    compiler, engine = fresh_compiler(max_entries=16)
    for value in range(5):
        compiler.compile(prefix(value))
    assert engine.registry.value("match.cache.size") == 5
    assert len(compiler) == 5


def test_invalid_cap_rejected():
    engine = PredicateEngine(LAYOUT.total_bits)
    with pytest.raises(ValueError):
        MatchCompiler(engine, LAYOUT, max_entries=0)


def test_default_cap_is_bounded():
    engine = PredicateEngine(LAYOUT.total_bits)
    compiler = MatchCompiler(engine, LAYOUT)
    assert compiler.max_entries == MatchCompiler.DEFAULT_MAX_ENTRIES == 8192
