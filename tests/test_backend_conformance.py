"""Cross-backend conformance suite — the contract a predicate backend signs.

One parametrized battery run against **every** backend in
:data:`repro.predicates.BACKENDS` and every ordered backend pairing:

* algebraic laws (boolean-algebra identities on randomized predicates),
* query coherence (``sat_count`` / ``evaluate`` / ``any_assignment`` /
  ``intersects`` / ``covers`` against brute-force header enumeration),
* ``split`` / ``split_many`` ≡ ``(a & b, a - b)``,
* cofactor signatures agreeing bit-for-bit across backends,
* FBW1 wire round-trips, both within a backend and across every pairing,
* :class:`~repro.core.inverse_model.InverseModel` apply-overwrites
  equivalence: the same update stream produces semantically identical EC
  tables on every backend,
* end-to-end: the differential runner sweeping all backend rows reports
  zero divergences.

A representation is a backend iff this file passes against it — add new
backends to ``BACKENDS`` and this suite gates them automatically.
"""

import itertools
import random

import pytest

from repro.core.model_manager import ModelWriter
from repro.dataplane.rule import DROP, Rule, ecmp
from repro.dataplane.update import RuleUpdate, UpdateOp
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match, Pattern
from repro.predicates import BACKENDS, backend_name, make_backend

NUM_VARS = 6  # 64 headers: small enough to brute-force every assignment

BACKEND_NAMES = sorted(BACKENDS)
PAIRINGS = list(itertools.product(BACKEND_NAMES, BACKEND_NAMES))


def _assignment(header: int, num_vars: int = NUM_VARS):
    """Header value -> variable assignment (var 0 is the MSB)."""
    return {
        i: bool((header >> (num_vars - 1 - i)) & 1) for i in range(num_vars)
    }


def _headers_of(pred, num_vars: int = NUM_VARS):
    """Brute-force semantics: the set of headers the predicate accepts."""
    return {
        h
        for h in range(1 << num_vars)
        if pred.evaluate(_assignment(h, num_vars))
    }


def _random_pred(engine, rng, max_cubes: int = 4):
    """A random predicate: disjunction of random partial cubes."""
    out = engine.false
    for _ in range(rng.randint(0, max_cubes)):
        vars_in_cube = rng.sample(
            range(engine.num_vars), rng.randint(1, engine.num_vars)
        )
        literals = [(v, rng.random() < 0.5) for v in sorted(vars_in_cube)]
        out = engine.disj(out, engine.cube(literals))
    return out


@pytest.fixture(params=BACKEND_NAMES)
def engine(request):
    return make_backend(request.param, NUM_VARS)


@pytest.fixture(params=PAIRINGS, ids=lambda p: f"{p[0]}->{p[1]}")
def pairing(request):
    src, dst = request.param
    return make_backend(src, NUM_VARS), make_backend(dst, NUM_VARS)


# ---------------------------------------------------------------------------
# constants and constructors
# ---------------------------------------------------------------------------
def test_constants(engine):
    assert engine.false.is_false and not engine.false.is_true
    assert engine.true.is_true and not engine.true.is_false
    assert engine.false.node == 0 and engine.true.node == 1
    assert engine.false.sat_count() == 0
    assert engine.true.sat_count() == 1 << NUM_VARS
    assert engine.false.any_assignment() is None
    assert engine.true.any_assignment() is not None
    assert backend_name(engine) in BACKENDS


def test_literals_and_cubes(engine):
    for var in range(NUM_VARS):
        lit = engine.variable(var)
        assert _headers_of(lit) == {
            h for h in range(1 << NUM_VARS) if _assignment(h)[var]
        }
        assert engine.literal(var, False) == engine.neg(lit)
    cube = engine.cube([(0, True), (2, False)])
    assert _headers_of(cube) == {
        h
        for h in range(1 << NUM_VARS)
        if _assignment(h)[0] and not _assignment(h)[2]
    }
    assert engine.cube([]) is engine.true or engine.cube([]).is_true


def test_out_of_range_variable_raises(engine):
    with pytest.raises(IndexError):
        engine.variable(NUM_VARS)
    with pytest.raises(IndexError):
        engine.literal(-1, True)


def test_bool_coercion_guard(engine):
    with pytest.raises(TypeError):
        bool(engine.true)


# ---------------------------------------------------------------------------
# algebraic laws
# ---------------------------------------------------------------------------
def test_algebraic_laws(engine):
    rng = random.Random(20260808)
    for _ in range(40):
        a = _random_pred(engine, rng)
        b = _random_pred(engine, rng)
        c = _random_pred(engine, rng)
        # commutativity / associativity
        assert (a & b) == (b & a)
        assert (a | b) == (b | a)
        assert ((a & b) & c) == (a & (b & c))
        assert ((a | b) | c) == (a | (b | c))
        # distributivity
        assert (a & (b | c)) == ((a & b) | (a & c))
        assert (a | (b & c)) == ((a | b) & (a | c))
        # De Morgan + double negation
        assert ~(a & b) == (~a | ~b)
        assert ~(a | b) == (~a & ~b)
        assert ~~a == a
        # absorption, complements, units
        assert (a & (a | b)) == a
        assert (a | (a & b)) == a
        assert (a | ~a).is_true and (a & ~a).is_false
        assert (a & engine.true) == a and (a | engine.false) == a
        # derived operators
        assert (a - b) == (a & ~b)
        assert (a ^ b) == ((a | b) - (a & b))
        assert engine.ite(a, b, c) == ((a & b) | (~a & c))


def test_queries_match_brute_force(engine):
    rng = random.Random(7)
    for _ in range(25):
        a = _random_pred(engine, rng)
        b = _random_pred(engine, rng)
        ha, hb = _headers_of(a), _headers_of(b)
        assert a.sat_count() == len(ha)
        assert a.intersects(b) == bool(ha & hb)
        assert b.covers(a) == (ha <= hb)
        assert _headers_of(a & b) == (ha & hb)
        assert _headers_of(a | b) == (ha | hb)
        assert _headers_of(a - b) == (ha - hb)
        assert _headers_of(~a) == set(range(1 << NUM_VARS)) - ha
        witness = a.any_assignment()
        if ha:
            assert witness is not None and a.evaluate(witness)
        else:
            assert witness is None


def test_equality_is_semantic_and_hash_consistent(engine):
    rng = random.Random(11)
    for _ in range(20):
        a = _random_pred(engine, rng)
        b = _random_pred(engine, rng)
        same = _headers_of(a) == _headers_of(b)
        assert (a == b) == same
        if same:
            assert hash(a) == hash(b)
            assert a.node == b.node  # canonical representatives


def test_split_and_split_many(engine):
    rng = random.Random(13)
    pairs = []
    for _ in range(12):
        a = _random_pred(engine, rng)
        b = _random_pred(engine, rng)
        inter, rest = a.split(b)
        assert inter == (a & b)
        assert rest == (a - b)
        assert (inter & rest).is_false
        assert (inter | rest) == a
        pairs.append((a, b))
    bulk = engine.split_many(pairs)
    assert len(bulk) == len(pairs)
    for (a, b), (inter, rest) in zip(pairs, bulk):
        assert inter == (a & b) and rest == (a - b)


def test_varargs_folds(engine):
    rng = random.Random(17)
    preds = [_random_pred(engine, rng) for _ in range(6)]
    union = engine.false
    inter = engine.true
    for p in preds:
        union = union | p
        inter = inter & p
    assert engine.disj_many(preds) == union
    assert engine.conj_many(preds) == inter
    assert engine.disj_many([]).is_false
    assert engine.conj_many([]).is_true


# ---------------------------------------------------------------------------
# signatures
# ---------------------------------------------------------------------------
def test_signature_is_cofactor_occupancy(engine):
    """Bit i of the signature <=> headers exist in the i-th top slice."""
    rng = random.Random(19)
    sig_bits = min(8, NUM_VARS)
    rest = NUM_VARS - sig_bits
    for _ in range(25):
        p = _random_pred(engine, rng)
        sig = engine.signature(p)
        headers = _headers_of(p)
        for i in range(1 << sig_bits):
            occupied = any(
                h >> rest == i for h in headers
            )
            assert bool(sig >> i & 1) == occupied, (i, sig, sorted(headers))


@pytest.mark.parametrize(
    "pair", PAIRINGS, ids=lambda p: f"{p[0]}-vs-{p[1]}"
)
def test_signatures_agree_across_backends(pair):
    """The same set of headers signs identically on every backend —
    the contract that lets mr2 prune with signatures from any backend."""
    left = make_backend(pair[0], NUM_VARS)
    right = make_backend(pair[1], NUM_VARS)
    rng_l = random.Random(23)
    rng_r = random.Random(23)
    for _ in range(25):
        a = _random_pred(left, rng_l)
        b = _random_pred(right, rng_r)
        assert _headers_of(a) == _headers_of(b)  # same seeded construction
        assert left.signature(a) == right.signature(b)


# ---------------------------------------------------------------------------
# wire round-trips (FBW1 as the universal interchange)
# ---------------------------------------------------------------------------
def test_wire_round_trip_within_backend(engine):
    rng = random.Random(29)
    preds = [_random_pred(engine, rng) for _ in range(8)]
    preds += [engine.false, engine.true]
    blob = engine.export_bytes(preds)
    assert isinstance(blob, bytes) and blob[:4] == b"FBW1"
    back = engine.import_bytes(blob)
    assert len(back) == len(preds)
    for orig, got in zip(preds, back):
        assert got == orig
        assert got.node == orig.node  # canonical ids survive the trip


def test_import_across_backends(pairing):
    src, dst = pairing
    rng = random.Random(31)
    preds = [_random_pred(src, rng) for _ in range(8)]
    preds += [src.false, src.true]
    # one-by-one and batched imports agree with brute-force semantics
    moved = dst.import_predicates(preds)
    assert len(moved) == len(preds)
    for orig, got in zip(preds, moved):
        assert got.engine is dst
        assert _headers_of(got) == _headers_of(orig)
        assert dst.import_predicate(orig) == got
    # and the round trip back is exact
    returned = src.import_predicates(moved)
    for orig, got in zip(preds, returned):
        assert got == orig and got.node == orig.node


def test_delta_round_trip_within_backend(engine):
    from repro.bdd.wire import DELTA_MAGIC, fingerprint_blob

    rng = random.Random(41)
    preds = [_random_pred(engine, rng) for _ in range(8)]
    frame = engine.export_bytes(preds)
    base = engine.import_bytes(frame)
    fp = fingerprint_blob(frame)
    changed = list(preds)
    changed[2] = ~changed[2]
    delta = engine.export_delta_bytes(changed, preds, fp)
    assert delta[:4] == DELTA_MAGIC
    applied, sources = engine.apply_delta_bytes(delta, base, fp)
    assert len(applied) == len(changed)
    assert any(s is None for s in sources)  # something was rebuilt
    for orig, got in zip(changed, applied):
        assert _headers_of(got) == _headers_of(orig)


def test_delta_chain_across_backends(pairing):
    """A full-frame + delta chain exported by one backend folds into any
    other backend with identical semantics — the fleet contract: workers
    and supervisor need not share a predicate representation."""
    from repro.bdd.wire import fingerprint_blob

    src, dst = pairing
    rng = random.Random(43)
    preds = [_random_pred(src, rng) for _ in range(8)]
    frames = [src.export_bytes(preds)]
    fp = fingerprint_blob(frames[0])
    for i in range(3):  # three delta epochs, one mutation each
        nxt = list(preds)
        nxt[i] = nxt[i] | _random_pred(src, rng)
        frame = src.export_delta_bytes(nxt, preds, fp)
        frames.append(frame)
        preds, fp = nxt, fingerprint_blob(frame)
    folded = dst.import_frames(frames)
    assert len(folded) == len(preds)
    for orig, got in zip(preds, folded):
        assert got.engine is dst
        assert _headers_of(got) == _headers_of(orig)
    # and the fold equals a one-shot full import of the final table
    direct = dst.import_predicates(preds)
    for a, b in zip(folded, direct):
        assert a == b


def test_import_widens_narrower_sources(pairing):
    """A predicate from a narrower header space imports as a prefix:
    the missing low-order variables become don't-cares."""
    src_kind = backend_name(pairing[0])
    narrow = make_backend(src_kind, 3)
    dst = pairing[1]
    pred = narrow.cube([(0, True), (2, False)])  # 1?0 over 3 vars
    wide = dst.import_predicate(pred)
    expect = {
        h
        for h in range(1 << NUM_VARS)
        if _assignment(h)[0] and not _assignment(h)[2]
    }
    assert _headers_of(wide) == expect


# ---------------------------------------------------------------------------
# GC / memory surface
# ---------------------------------------------------------------------------
def test_collect_preserves_live_handles(engine):
    rng = random.Random(37)
    keep = [_random_pred(engine, rng) for _ in range(6)]
    semantics = [_headers_of(p) for p in keep]
    for _ in range(50):  # churn dead intermediates
        _random_pred(engine, rng) & _random_pred(engine, rng)
    engine.collect()
    for pred, headers in zip(keep, semantics):
        assert _headers_of(pred) == headers
    pinned = engine.pin(keep[0])
    assert pinned == keep[0]
    engine.unpin(pinned)
    assert engine.shared_node_count(keep) >= 0
    assert engine.memory_estimate_bytes() >= 0


# ---------------------------------------------------------------------------
# the inverse model is backend-agnostic
# ---------------------------------------------------------------------------
def _boundary_updates(epoch="conf"):
    """A FIB mixing prefixes, a suffix and ECMP across three devices."""

    def rule(priority, ternaries, action):
        return Rule(
            priority=priority,
            match=Match({"dst": Pattern(tuple(ternaries))}),
            action=action,
        )

    ups = [
        (0, rule(1, [(8, 12)], 2)),       # dst=10** -> port 2
        (0, rule(2, [(1, 1)], 1)),        # dst=***1 -> port 1 (suffix)
        (1, rule(1, [(8, 8)], ecmp(2, 3))),  # dst=1*** -> ECMP
        (1, rule(2, [(0, 12)], DROP)),    # dst=00** -> drop
        (2, rule(1, [(4, 14)], 0)),       # dst=010* -> port 0
    ]
    return [
        RuleUpdate(UpdateOp.INSERT, device, r, epoch) for device, r in ups
    ]


@pytest.mark.parametrize(
    "pair", PAIRINGS, ids=lambda p: f"{p[0]}-vs-{p[1]}"
)
def test_inverse_model_equivalence(pair):
    """The same update stream yields the same EC table on every backend:
    identical header -> behavior maps and identical EC partitions."""
    layout = dst_only_layout(4)
    writers = []
    for kind in pair:
        writer = ModelWriter([0, 1, 2], layout, backend=kind)
        writer.submit(_boundary_updates())
        writer.flush()
        writers.append(writer)
    left, right = writers
    assert left.num_ecs() == right.num_ecs()
    for header in range(1 << layout.total_bits):
        assignment = _assignment(header, layout.total_bits)
        assert left.model.behavior(assignment) == right.model.behavior(
            assignment
        ), header
    left.model.check_invariants()
    right.model.check_invariants()


@pytest.mark.parametrize("kind", BACKEND_NAMES)
def test_inverse_model_fast_apply_matches_reference(kind):
    """The signature-pruned fast path equals the historical cross
    product on every backend, not just the BDD engine."""
    layout = dst_only_layout(4)
    fast = ModelWriter([0, 1, 2], layout, backend=kind)
    fast.submit(_boundary_updates())
    fast.flush()
    slow = ModelWriter([0, 1, 2], layout, backend=kind)
    slow.model.fast_apply = False
    slow.submit(_boundary_updates())
    slow.flush()
    assert fast.num_ecs() == slow.num_ecs()
    for header in range(1 << layout.total_bits):
        assignment = _assignment(header, layout.total_bits)
        assert fast.model.behavior(assignment) == slow.model.behavior(
            assignment
        )


# ---------------------------------------------------------------------------
# end-to-end: the difftest sweep is the final arbiter
# ---------------------------------------------------------------------------
def test_difftest_sweep_has_zero_divergences():
    from repro.difftest import DifferentialRunner, ScenarioGenerator
    from repro.difftest.runner import SWEEP_BACKENDS

    runner = DifferentialRunner(backends=SWEEP_BACKENDS)
    generator = ScenarioGenerator(seed=20260808, profile="smoke")
    for scenario in generator.stream(12):
        result = runner.run(scenario)
        assert result.ok, (scenario.name, result.divergences)
        resolved = result.stats.get("backends", {})
        for row, kind in resolved.items():
            assert kind in BACKENDS, (row, kind)
