"""Tests for Algorithm 1, MR2 and the model manager — the heart of Fast IMT.

The headline properties (Theorem 2 / the R ∼ M equivalence) are checked by
exhaustive enumeration of a small header space against the forward model,
and against the Appendix-C natural transformation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.predicate import PredicateEngine
from repro.core.actiontree import ActionTreeStore
from repro.core.imt import (
    calculate_atomic_overwrites,
    decompose_block,
    device_action_predicates,
    effective_predicates,
    merge_block_and_diff,
    natural_transformation,
)
from repro.core.inverse_model import InverseModel
from repro.core.model_manager import ModelWriter
from repro.core.mr2 import (
    Mr2Pipeline,
    aggregate,
    reduce_by_action,
    reduce_by_predicate,
)
from repro.core.overwrite import Overwrite, atomic, check_conflict_free
from repro.dataplane.fib import FibSnapshot, FibTable
from repro.dataplane.rule import DROP, Rule
from repro.dataplane.update import UpdateBlock, delete, insert
from repro.errors import OverwriteConflictError, RuleNotFoundError
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match, MatchCompiler, Pattern

from .conftest import assert_model_matches_snapshot, random_rule_strategy

LAYOUT = dst_only_layout(4)
ACTIONS = [1, 2, 3]


def rule(pri, value, length, action):
    return Rule(pri, Match.dst_prefix(value, length, LAYOUT), action)


def fresh_compiler():
    return MatchCompiler(PredicateEngine(LAYOUT.total_bits), LAYOUT)


class TestMergeBlockAndDiff:
    def test_pure_insert(self):
        table = FibTable()
        table.insert(rule(1, 0, 0, 1))
        new_rule = rule(3, 0b1000, 1, 2)
        merged, rdiff = merge_block_and_diff(table.rules(), [insert(0, new_rule)])
        assert merged[0] == new_rule
        assert [merged[i] for i in rdiff] == [new_rule]

    def test_insert_goes_after_equal_priority(self):
        table = FibTable()
        existing = rule(2, 0, 0, 1)
        table.insert(existing)
        new = rule(2, 0b1000, 1, 2)
        merged, _ = merge_block_and_diff(table.rules(), [insert(0, new)])
        assert merged.index(existing) < merged.index(new)

    def test_delete_marks_lower_rules_expanding(self):
        table = FibTable()
        high = rule(3, 0b1000, 1, 1)
        low = rule(1, 0, 0, 2)
        table.insert(high)
        table.insert(low)
        merged, rdiff = merge_block_and_diff(table.rules(), [delete(0, high)])
        assert high not in merged
        expanding = [merged[i] for i in rdiff]
        assert low in expanding
        assert merged[-1] in expanding  # default rule expands too

    def test_rules_above_deletion_not_expanding(self):
        table = FibTable()
        top = rule(5, 0, 0, 1)
        mid = rule(3, 0, 0, 2)
        table.insert(top)
        table.insert(mid)
        merged, rdiff = merge_block_and_diff(table.rules(), [delete(0, mid)])
        expanding = [merged[i] for i in rdiff]
        assert top not in expanding

    def test_delete_missing_raises(self):
        table = FibTable()
        with pytest.raises(RuleNotFoundError):
            merge_block_and_diff(table.rules(), [delete(0, rule(2, 0, 0, 9))])

    def test_equal_priority_deletes_any_order(self):
        table = FibTable()
        a, b = rule(2, 0b0000, 2, 1), rule(2, 0b0100, 2, 2)
        table.insert(a)
        table.insert(b)
        merged, _ = merge_block_and_diff(
            table.rules(), [delete(0, b), delete(0, a)]
        )
        assert a not in merged and b not in merged

    def test_mixed_block_matches_sequential_application(self):
        table = FibTable()
        rules = [rule(p, v, 2, p + 1) for p, v in [(1, 0), (2, 4), (3, 8)]]
        for r in rules:
            table.insert(r)
        block = [
            delete(0, rules[1]),
            insert(0, rule(2, 12, 2, 9)),
            insert(0, rule(5, 0, 1, 7)),
        ]
        merged, _ = merge_block_and_diff(table.rules(), block)
        expected = table.copy()
        expected.delete(rules[1])
        expected.insert(rule(2, 12, 2, 9))
        expected.insert(rule(5, 0, 1, 7))
        assert merged == expected.rules()

    def test_result_stays_sorted(self):
        table = FibTable()
        for p in [4, 2]:
            table.insert(rule(p, 0, 0, p))
        merged, _ = merge_block_and_diff(
            table.rules(), [insert(0, rule(3, 0, 0, 3)), insert(0, rule(5, 0, 0, 5))]
        )
        priorities = [r.priority for r in merged]
        assert priorities == sorted(priorities, reverse=True)


class TestEffectivePredicates:
    def test_higher_priority_shadows(self):
        compiler = fresh_compiler()
        table = FibTable()
        table.insert(rule(2, 0b1000, 1, 1))  # dst 1???
        table.insert(rule(1, 0, 0, 2))       # catch-all
        effs = effective_predicates(table.rules(), compiler)
        # Rule 2's effective predicate excludes the 1??? space.
        dst_bits = dict(LAYOUT.bits_of("dst", 0b1000))
        assert effs[0].evaluate(dst_bits)
        assert not effs[1].evaluate(dst_bits)
        low_bits = dict(LAYOUT.bits_of("dst", 0b0100))
        assert effs[1].evaluate(low_bits)

    def test_partition(self):
        compiler = fresh_compiler()
        table = FibTable()
        table.insert(rule(2, 0b1000, 1, 1))
        table.insert(rule(1, 0b0000, 2, 2))
        effs = effective_predicates(table.rules(), compiler)
        engine = compiler.engine
        union = engine.false
        total = 0
        for e in effs:
            union = union | e
            total += e.sat_count()
        assert union.is_true
        assert total == LAYOUT.universe_size

    def test_device_action_predicates_merges_same_action(self):
        compiler = fresh_compiler()
        table = FibTable()
        table.insert(rule(2, 0b1000, 2, 7))
        table.insert(rule(2, 0b0100, 2, 7))
        by_action = device_action_predicates(table.rules(), compiler)
        assert set(by_action) == {7, DROP}
        assert by_action[7].sat_count() == 8


class TestReduceOperators:
    def test_reduce_by_action_merges_predicates(self):
        compiler = fresh_compiler()
        engine = compiler.engine
        p1 = compiler.compile(Match.dst_prefix(0b0000, 2, LAYOUT))
        p2 = compiler.compile(Match.dst_prefix(0b0100, 2, LAYOUT))
        reduced = reduce_by_action([atomic(p1, 0, 9), atomic(p2, 0, 9)])
        assert len(reduced) == 1
        assert reduced[0].predicate == (p1 | p2)
        assert reduced[0].delta == ((0, 9),)

    def test_reduce_by_action_keeps_distinct_deltas(self):
        compiler = fresh_compiler()
        p = compiler.compile(Match.dst_prefix(0, 1, LAYOUT))
        reduced = reduce_by_action([atomic(p, 0, 1), atomic(p, 1, 1)])
        assert len(reduced) == 2

    def test_reduce_by_predicate_merges_deltas(self):
        compiler = fresh_compiler()
        p = compiler.compile(Match.dst_prefix(0, 1, LAYOUT))
        reduced = reduce_by_predicate([atomic(p, 0, 1), atomic(p, 1, 2)])
        assert len(reduced) == 1
        assert reduced[0].delta == ((0, 1), (1, 2))

    def test_reduce_by_predicate_detects_conflicts(self):
        compiler = fresh_compiler()
        p = compiler.compile(Match.dst_prefix(0, 1, LAYOUT))
        with pytest.raises(OverwriteConflictError):
            reduce_by_predicate([atomic(p, 0, 1), atomic(p, 0, 2)])

    def test_figure2_style_aggregation(self):
        """Six updates with two distinct predicates collapse to two overwrites."""
        compiler = fresh_compiler()
        p4 = compiler.compile(Match.dst_prefix(0b0000, 2, LAYOUT))
        p5 = compiler.compile(Match.dst_prefix(0b0100, 2, LAYOUT))
        atomics = [
            atomic(p4, 0, 10), atomic(p5, 0, 10),
            atomic(p4, 1, 20), atomic(p5, 1, 20),
            atomic(p4, 2, 30), atomic(p5, 2, 30),
        ]
        compact = aggregate(atomics)
        assert len(compact) == 1
        assert compact[0].predicate == (p4 | p5)
        assert compact[0].delta == ((0, 10), (1, 20), (2, 30))
        check_conflict_free(compact)


class TestInverseModelApplication:
    def test_initial_model_single_ec(self):
        engine = PredicateEngine(LAYOUT.total_bits)
        store = ActionTreeStore()
        model = InverseModel(engine, store, [0, 1])
        assert len(model) == 1
        model.check_invariants()

    def test_overwrite_splits_and_merges(self):
        compiler = fresh_compiler()
        engine = compiler.engine
        store = ActionTreeStore()
        model = InverseModel(engine, store, [0])
        p = compiler.compile(Match.dst_prefix(0b1000, 1, LAYOUT))
        model.apply_overwrites([atomic(p, 0, 5)])
        assert len(model) == 2
        model.check_invariants()
        # Overwriting the complement with the same action merges back.
        model.apply_overwrites([atomic(~p, 0, 5)])
        assert len(model) == 1
        model.check_invariants()

    def test_provenance_tracks_origin(self):
        compiler = fresh_compiler()
        engine = compiler.engine
        store = ActionTreeStore()
        model = InverseModel(engine, store, [0])
        original = model.entries()[0][0]
        p = compiler.compile(Match.dst_prefix(0b1000, 1, LAYOUT))
        deltas = model.apply_overwrites([atomic(p, 0, 5)])
        assert {d.origin for d in deltas} == {original.node}

    def test_empty_overwrite_ignored(self):
        engine = PredicateEngine(LAYOUT.total_bits)
        store = ActionTreeStore()
        model = InverseModel(engine, store, [0])
        model.apply_overwrites([atomic(engine.false, 0, 5)])
        assert len(model) == 1


def build_manager(devices=(0, 1, 2), threshold=None):
    return ModelWriter(list(devices), LAYOUT, block_threshold=threshold)


class TestModelWriter:
    def test_block_equivalence_simple(self):
        manager = build_manager()
        updates = [
            insert(0, rule(2, 0b1000, 1, 1)),
            insert(1, rule(2, 0b1000, 1, 2)),
            insert(2, rule(1, 0, 0, 0)),
        ]
        manager.submit(updates)
        manager.flush()
        assert_model_matches_snapshot(manager.model, manager.snapshot, LAYOUT)
        manager.model.check_invariants()

    def test_threshold_triggers_flush(self):
        manager = build_manager(threshold=2)
        manager.submit([insert(0, rule(1, 0, 0, 1))])
        assert manager.pending_count == 1
        manager.submit([insert(1, rule(1, 0, 0, 1))])
        assert manager.pending_count == 0
        assert manager.breakdown.blocks == 1

    def test_delete_restores_previous_state(self):
        manager = build_manager()
        r = rule(3, 0b1000, 2, 7)
        manager.submit([insert(0, r)])
        manager.flush()
        manager.submit([delete(0, r)])
        manager.flush()
        assert manager.num_ecs() == 1
        assert_model_matches_snapshot(manager.model, manager.snapshot, LAYOUT)

    def test_per_update_equals_block(self):
        updates = [
            insert(0, rule(2, 0b1000, 1, 1)),
            insert(0, rule(3, 0b1100, 2, 2)),
            insert(1, rule(1, 0, 0, 3)),
            delete(0, rule(2, 0b1000, 1, 1)),
        ]
        block_mgr = build_manager()
        block_mgr.submit(updates)
        block_mgr.flush()
        puv_mgr = build_manager(threshold=1)
        puv_mgr.submit(updates)
        assert_model_matches_snapshot(puv_mgr.model, puv_mgr.snapshot, LAYOUT)
        # Same ECs: compare predicate/vector sets.
        lhs = {(p.node, v) for p, v in block_mgr.model.entries()}
        rhs = {(p.node, v) for p, v in puv_mgr.model.entries()}
        # Engines differ, so compare via behavior instead of node ids.
        assert block_mgr.num_ecs() == puv_mgr.num_ecs()

    def test_matches_natural_transformation(self):
        manager = build_manager()
        updates = [
            insert(0, rule(2, 0b1000, 1, 1)),
            insert(1, rule(2, 0b0100, 2, 2)),
            insert(2, rule(1, 0, 0, 1)),
        ]
        manager.submit(updates)
        manager.flush()
        natural = natural_transformation(
            manager.snapshot, manager.compiler, manager.store
        )
        lhs = {(p.node, v) for p, v in manager.model.entries()}
        rhs = {(p.node, v) for p, v in natural.entries()}
        assert lhs == rhs

    def test_breakdown_accumulates(self):
        manager = build_manager()
        manager.submit([insert(0, rule(1, 0, 0, 1))])
        manager.flush()
        assert manager.breakdown.blocks == 1
        assert manager.breakdown.updates == 1
        assert manager.breakdown.total_seconds > 0


class TestEquivalenceProperties:
    """Hypothesis: random well-behaved FIB blocks keep R ∼ M (Theorem 2)."""

    @given(
        st.lists(random_rule_strategy(LAYOUT, ACTIONS), max_size=12),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_insert_blocks_preserve_equivalence(self, rules, data):
        manager = build_manager(devices=(0, 1))
        updates = [
            insert(data.draw(st.integers(0, 1), label="device"), r) for r in rules
        ]
        # Split into two blocks to exercise incremental application.
        half = len(updates) // 2
        manager.submit(updates[:half])
        manager.flush()
        manager.submit(updates[half:])
        manager.flush()
        manager.model.check_invariants()
        assert_model_matches_snapshot(manager.model, manager.snapshot, LAYOUT)

    @given(
        st.lists(random_rule_strategy(LAYOUT, ACTIONS), min_size=2, max_size=10),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_insert_then_delete_some(self, rules, data):
        manager = build_manager(devices=(0,))
        inserts = [insert(0, r) for r in rules]
        manager.submit(inserts)
        manager.flush()
        # Delete a subset (dedup rules first: equal rules collapse).
        unique = list(dict.fromkeys(rules))
        keep = data.draw(
            st.lists(st.sampled_from(unique), unique=True, max_size=len(unique)),
            label="to_delete",
        )
        seen = set()
        deletions = []
        for r in rules:
            if r in keep and r not in seen:
                seen.add(r)
                deletions.append(delete(0, r))
        manager.submit(deletions)
        manager.flush()
        manager.model.check_invariants()
        assert_model_matches_snapshot(manager.model, manager.snapshot, LAYOUT)

    @given(st.lists(random_rule_strategy(LAYOUT, ACTIONS), max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_block_equals_per_update(self, rules):
        updates = [insert(0, r) for r in rules]
        block_mgr = build_manager(devices=(0,))
        block_mgr.submit(updates)
        block_mgr.flush()
        puv_mgr = build_manager(devices=(0,), threshold=1)
        puv_mgr.submit(updates)
        assert block_mgr.num_ecs() == puv_mgr.num_ecs()
        assert_model_matches_snapshot(block_mgr.model, block_mgr.snapshot, LAYOUT)
        assert_model_matches_snapshot(puv_mgr.model, puv_mgr.snapshot, LAYOUT)

    @given(st.lists(random_rule_strategy(LAYOUT, ACTIONS), max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_atomic_overwrites_conflict_free(self, rules):
        compiler = fresh_compiler()
        table = FibTable()
        merged, rdiff = merge_block_and_diff(
            table.rules(), [insert(0, r) for r in rules]
        )
        overwrites = calculate_atomic_overwrites(0, merged, rdiff, compiler)
        check_conflict_free(overwrites)

    @given(st.lists(random_rule_strategy(LAYOUT, ACTIONS), max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_emit_noop_partitions_space(self, rules):
        compiler = fresh_compiler()
        engine = compiler.engine
        table = FibTable()
        merged, rdiff = merge_block_and_diff(
            table.rules(), [insert(0, r) for r in rules]
        )
        overwrites = calculate_atomic_overwrites(
            0, merged, rdiff, compiler, emit_noop=True
        )
        union = engine.false
        total = 0
        for ow in overwrites:
            union = union | ow.predicate
            total += ow.predicate.sat_count()
        assert union.is_true
        assert total == LAYOUT.universe_size


class TestTrieAcceleratedMap:
    """§3.4 trie look-up: same models as the sorted-scan path."""

    @given(
        st.lists(random_rule_strategy(LAYOUT, ACTIONS), max_size=12),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_trie_mode_equals_scan_mode(self, rules, data):
        updates = [
            insert(data.draw(st.integers(0, 1), label="device"), r)
            for r in rules
        ]
        scan = ModelWriter((0, 1), LAYOUT)
        trie = ModelWriter((0, 1), LAYOUT, use_trie=True)
        half = len(updates) // 2
        for manager in (scan, trie):
            manager.submit(updates[:half])
            manager.flush()
            manager.submit(updates[half:])
            manager.flush()
        assert scan.num_ecs() == trie.num_ecs()
        assert_model_matches_snapshot(trie.model, trie.snapshot, LAYOUT)

    @given(
        st.lists(random_rule_strategy(LAYOUT, ACTIONS), min_size=1, max_size=8),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_trie_mode_with_deletions(self, rules, data):
        trie = ModelWriter((0,), LAYOUT, use_trie=True)
        trie.submit([insert(0, r) for r in rules])
        trie.flush()
        unique = list(dict.fromkeys(rules))
        doomed = data.draw(
            st.lists(st.sampled_from(unique), unique=True, max_size=3),
            label="deletions",
        )
        trie.submit([delete(0, r) for r in doomed])
        trie.flush()
        trie.model.check_invariants()
        assert_model_matches_snapshot(trie.model, trie.snapshot, LAYOUT)

    def test_per_update_trie_mode(self):
        manager = ModelWriter((0, 1), LAYOUT, block_threshold=1, use_trie=True)
        manager.submit(
            [
                insert(0, rule(2, 0b1000, 1, 1)),
                insert(0, rule(3, 0b1100, 2, 2)),
                insert(1, rule(1, 0, 0, 3)),
                delete(0, rule(2, 0b1000, 1, 1)),
            ]
        )
        assert_model_matches_snapshot(manager.model, manager.snapshot, LAYOUT)
