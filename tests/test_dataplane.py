"""Tests for rules, FIB tables, updates and traces."""

import pytest

from repro.dataplane.fib import FibSnapshot, FibTable
from repro.dataplane.rule import (
    DEFAULT_PRIORITY,
    DROP,
    Rule,
    default_rule,
    ecmp,
    next_hops_of,
)
from repro.dataplane.trace import (
    insert_then_delete,
    inserts_only,
    interleave_round_robin,
    long_tail_split,
    read_trace,
    shuffled,
    update_to_json,
    update_from_json,
    write_trace,
)
from repro.dataplane.update import RuleUpdate, UpdateBlock, UpdateOp, delete, insert
from repro.errors import DataPlaneError, RuleNotFoundError
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match

LAYOUT = dst_only_layout(4)


def rule(pri, value, length, action):
    return Rule(pri, Match.dst_prefix(value, length, LAYOUT), action)


class TestActions:
    def test_next_hops(self):
        assert next_hops_of(DROP) == ()
        assert next_hops_of(3) == (3,)
        assert next_hops_of((1, 2)) == (1, 2)
        assert next_hops_of(None) == ()

    def test_ecmp_canonicalisation(self):
        assert ecmp(3, 1, 3) == (1, 3)
        assert ecmp(5) == 5
        assert ecmp() == DROP

    def test_bad_action(self):
        with pytest.raises(TypeError):
            next_hops_of(3.5)


class TestRule:
    def test_default_rule(self):
        d = default_rule()
        assert d.is_default
        assert d.priority == DEFAULT_PRIORITY
        assert d.match.is_wildcard

    def test_priority_floor(self):
        with pytest.raises(ValueError):
            Rule(-2, Match.wildcard(), DROP)


class TestFibTable:
    def test_lookup_priority(self):
        t = FibTable()
        t.insert(rule(1, 0, 0, 10))          # catch-all at pri 1
        t.insert(rule(2, 0b1000, 1, 20))     # dst 1??? at pri 2
        assert t.lookup({"dst": 0b1010}) == 20
        assert t.lookup({"dst": 0b0010}) == 10

    def test_default_action(self):
        t = FibTable()
        assert t.lookup({"dst": 7}) == DROP
        t2 = FibTable(default_action=99)
        assert t2.lookup({"dst": 7}) == 99

    def test_equal_priority_earlier_wins(self):
        t = FibTable()
        first = rule(5, 0b1000, 1, 1)
        second = rule(5, 0b1000, 1, 2)
        t.insert(first)
        t.insert(second)
        assert t.lookup({"dst": 0b1000}) == 1

    def test_rules_sorted_descending(self):
        t = FibTable()
        for pri in [3, 1, 5, 2]:
            t.insert(rule(pri, 0, 0, pri))
        priorities = [r.priority for r in t.rules()]
        assert priorities == [5, 3, 2, 1, DEFAULT_PRIORITY]

    def test_delete(self):
        t = FibTable()
        r = rule(2, 0b1000, 2, 7)
        t.insert(r)
        assert len(t) == 1
        t.delete(rule(2, 0b1000, 2, 7))
        assert len(t) == 0

    def test_delete_missing_raises(self):
        t = FibTable()
        with pytest.raises(RuleNotFoundError):
            t.delete(rule(2, 0, 0, 7))

    def test_delete_among_equal_priority(self):
        t = FibTable()
        a, b = rule(2, 0b0000, 2, 1), rule(2, 0b0100, 2, 2)
        t.insert(a)
        t.insert(b)
        t.delete(a)
        assert t.rules(include_default=False) == [b]

    def test_default_rule_protected(self):
        t = FibTable()
        with pytest.raises(DataPlaneError):
            t.delete(default_rule())
        with pytest.raises(DataPlaneError):
            t.insert(default_rule())

    def test_copy_is_independent(self):
        t = FibTable()
        t.insert(rule(1, 0, 0, 1))
        c = t.copy()
        c.insert(rule(2, 0, 0, 2))
        assert len(t) == 1
        assert len(c) == 2

    def test_matching_rule(self):
        t = FibTable()
        r = rule(2, 0b1000, 1, 5)
        t.insert(r)
        assert t.matching_rule({"dst": 0b1100}) == r
        assert t.matching_rule({"dst": 0b0100}).is_default


class TestFibSnapshot:
    def test_behavior_vector(self):
        snap = FibSnapshot([0, 1])
        snap.table(0).insert(rule(1, 0b1000, 1, 1))
        behavior = snap.behavior({"dst": 0b1000})
        assert behavior == {0: 1, 1: DROP}

    def test_total_rules(self):
        snap = FibSnapshot([0, 1])
        snap.table(0).insert(rule(1, 0, 0, 1))
        snap.table(1).insert(rule(1, 0, 0, 1))
        assert snap.total_rules() == 2

    def test_unknown_device(self):
        snap = FibSnapshot([0])
        with pytest.raises(DataPlaneError):
            snap.table(5)

    def test_copy(self):
        snap = FibSnapshot([0])
        copy = snap.copy()
        copy.table(0).insert(rule(1, 0, 0, 1))
        assert snap.total_rules() == 0


class TestUpdates:
    def test_insert_delete_constructors(self):
        r = rule(1, 0, 0, 1)
        assert insert(0, r).is_insert
        assert delete(0, r).is_delete
        assert insert(0, r).inverse() == delete(0, r)

    def test_with_epoch(self):
        u = insert(0, rule(1, 0, 0, 1)).with_epoch("e1")
        assert u.epoch == "e1"

    def test_block_grouping(self):
        r = rule(1, 0, 0, 1)
        block = UpdateBlock([insert(0, r), insert(1, r), insert(0, rule(2, 0, 0, 2))])
        assert sorted(block.devices()) == [0, 1]
        assert len(block.updates_for(0)) == 2
        assert len(block) == 3

    def test_remove_cancelling_insert_then_delete(self):
        r = rule(1, 0, 0, 1)
        block = UpdateBlock([insert(0, r), delete(0, r)])
        assert block.remove_cancelling().is_empty()

    def test_remove_cancelling_delete_then_insert(self):
        r = rule(1, 0, 0, 1)
        block = UpdateBlock([delete(0, r), insert(0, r)])
        assert block.remove_cancelling().is_empty()

    def test_remove_cancelling_keeps_net_effect(self):
        r = rule(1, 0, 0, 1)
        block = UpdateBlock([insert(0, r), delete(0, r), insert(0, r)])
        net = block.remove_cancelling()
        assert len(net) == 1
        assert next(iter(net)).is_insert

    def test_remove_cancelling_distinct_rules_untouched(self):
        block = UpdateBlock([insert(0, rule(1, 0, 0, 1)), delete(0, rule(2, 0, 0, 2))])
        assert len(block.remove_cancelling()) == 2


class TestTraces:
    def _rules(self):
        return {
            0: [rule(1, 0b0000, 2, 1), rule(2, 0b0100, 2, 2)],
            1: [rule(1, 0b1000, 2, 3)],
        }

    def test_insert_then_delete_layout(self):
        trace = insert_then_delete(self._rules())
        assert len(trace) == 6
        assert all(u.is_insert for u in trace[:3])
        assert all(u.is_delete for u in trace[3:])
        # Deletions occur in insertion order.
        assert [u.rule for u in trace[:3]] == [u.rule for u in trace[3:]]

    def test_inserts_only(self):
        trace = inserts_only(self._rules())
        assert len(trace) == 3
        assert all(u.is_insert for u in trace)

    def test_interleave_round_robin(self):
        per_device = {
            0: [insert(0, rule(1, 0, 0, 1)), insert(0, rule(2, 0, 0, 2))],
            1: [insert(1, rule(1, 0, 0, 3))],
        }
        order = interleave_round_robin(per_device)
        assert [u.device for u in order] == [0, 1, 0]

    def test_shuffled_deterministic(self):
        trace = insert_then_delete(self._rules())
        assert shuffled(trace, seed=1) == shuffled(trace, seed=1)
        assert shuffled(trace, seed=1) != shuffled(trace, seed=2)

    def test_long_tail_split(self):
        trace = insert_then_delete(self._rules())
        prompt, delayed = long_tail_split(trace, [1])
        assert all(u.device != 1 for u in prompt)
        assert all(u.device == 1 for u in delayed)
        assert len(prompt) + len(delayed) == len(trace)

    def test_json_roundtrip(self):
        u = insert(3, rule(2, 0b0100, 2, (1, 2)), epoch="e7")
        restored = update_from_json(update_to_json(u))
        assert restored == u

    def test_trace_file_roundtrip(self, tmp_path):
        trace = insert_then_delete(self._rules())
        path = str(tmp_path / "trace.jsonl")
        count = write_trace(path, trace)
        assert count == len(trace)
        assert list(read_trace(path)) == trace


class TestWellBehavedness:
    """Definition 4 / footnote 2: detecting ambiguous same-priority rules."""

    def _compiler(self):
        from repro.bdd.predicate import PredicateEngine
        from repro.headerspace.match import MatchCompiler

        return MatchCompiler(PredicateEngine(LAYOUT.total_bits), LAYOUT)

    def test_clean_table_has_no_conflicts(self):
        from repro.dataplane.fib import find_rule_conflicts

        t = FibTable()
        t.insert(rule(2, 0b0000, 1, 1))
        t.insert(rule(2, 0b1000, 1, 2))  # same priority, disjoint
        t.insert(rule(3, 0b0000, 2, 9))  # overlapping, higher priority
        assert find_rule_conflicts(t, self._compiler()) == []

    def test_conflicting_pair_found(self):
        from repro.dataplane.fib import find_rule_conflicts

        t = FibTable()
        a, b = rule(2, 0b0000, 1, 1), rule(2, 0b0000, 2, 2)
        t.insert(a)
        t.insert(b)
        conflicts = find_rule_conflicts(t, self._compiler())
        assert conflicts == [(a, b)]

    def test_same_action_overlap_allowed(self):
        from repro.dataplane.fib import find_rule_conflicts

        t = FibTable()
        t.insert(rule(2, 0b0000, 1, 7))
        t.insert(rule(2, 0b0000, 2, 7))  # overlap, same action: fine
        assert find_rule_conflicts(t, self._compiler()) == []

    def test_snapshot_checker_raises(self):
        from repro.dataplane.fib import check_well_behaved
        from repro.errors import DataPlaneError

        snap = FibSnapshot([0, 1])
        snap.table(1).insert(rule(2, 0b0000, 1, 1))
        snap.table(1).insert(rule(2, 0b0000, 2, 2))
        with pytest.raises(DataPlaneError) as err:
            check_well_behaved(snap, self._compiler())
        assert "device 1" in str(err.value)

    def test_snapshot_checker_passes_clean(self):
        from repro.dataplane.fib import check_well_behaved

        snap = FibSnapshot([0])
        snap.table(0).insert(rule(1, 0, 0, 1))
        check_well_behaved(snap, self._compiler())
