"""End-to-end tests for composite path-set requirements (and/or/not) and
multi-epoch dispatcher replay."""

import pytest

from repro.results import Verdict
from repro.ce2d.verifier import SubspaceVerifier
from repro.core.subspace import SubspacePartition
from repro.dataplane.rule import Rule
from repro.dataplane.update import insert
from repro.flash import Flash
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.generators import figure3_example, internet2, ring
from repro.routing.openr import OpenRSimulation
from repro.spec.requirement import requirement

LAYOUT = dst_only_layout(8)


def fwd(topo, u, v, pri=1):
    return insert(topo.id_of(u), Rule(pri, Match.wildcard(), topo.id_of(v)))


class TestCompositePathSets:
    """Requirements combining regexes with and / or / not."""

    def _sync_path(self, verifier, topo, hops, close_with=()):
        last = None
        for u, v in hops:
            last = verifier.receive(topo.id_of(u), [fwd(topo, u, v)])
        for device in close_with:
            last = verifier.receive(topo.id_of(device), [])
        return last

    def test_and_requirement_satisfied(self):
        topo = figure3_example()
        req = requirement(
            "reach-and-waypoint",
            topo,
            LAYOUT,
            Match.wildcard(),
            ["S"],
            "(S .* D) and (S .* W .* D)",
        )
        v = SubspaceVerifier(topo, LAYOUT, requirements=[req])
        last = self._sync_path(
            v, topo, [("S", "W"), ("W", "C"), ("C", "D")], close_with=["D"]
        )
        assert last[0].verdict is Verdict.SATISFIED

    def test_and_requirement_violated_when_one_leg_fails(self):
        topo = figure3_example()
        req = requirement(
            "reach-and-waypoint",
            topo,
            LAYOUT,
            Match.wildcard(),
            ["S"],
            "(S .* D) and (S .* W .* D)",
        )
        v = SubspaceVerifier(topo, LAYOUT, requirements=[req])
        # Converge to the Y-side path: reaches D but never W.
        hops = [("S", "A"), ("A", "B"), ("B", "Y"), ("Y", "C"), ("C", "D")]
        last = self._sync_path(v, topo, hops, close_with=["D", "W", "E"])
        assert last[0].verdict is Verdict.VIOLATED

    def test_or_requirement(self):
        topo = figure3_example()
        req = requirement(
            "either-waypoint",
            topo,
            LAYOUT,
            Match.wildcard(),
            ["S"],
            "(S .* W .* D) or (S .* Y .* D)",
        )
        v = SubspaceVerifier(topo, LAYOUT, requirements=[req])
        hops = [("S", "A"), ("A", "B"), ("B", "Y"), ("Y", "C"), ("C", "D")]
        last = self._sync_path(v, topo, hops, close_with=["D"])
        assert last[0].verdict is Verdict.SATISFIED

    def test_not_requirement_blocks_node(self):
        """'Reach D but never via E' — violated by the E path."""
        topo = figure3_example()
        req = requirement(
            "avoid-E",
            topo,
            LAYOUT,
            Match.wildcard(),
            ["S"],
            "(S .* D) and not (S .* E .* D)",
        )
        v = SubspaceVerifier(topo, LAYOUT, requirements=[req])
        hops = [("S", "A"), ("A", "B"), ("B", "E"), ("E", "C"), ("C", "D")]
        last = self._sync_path(v, topo, hops, close_with=["D", "W", "Y"])
        assert last[0].verdict is Verdict.VIOLATED

    def test_not_requirement_satisfied_by_clean_path(self):
        topo = figure3_example()
        req = requirement(
            "avoid-E",
            topo,
            LAYOUT,
            Match.wildcard(),
            ["S"],
            "(S .* D) and not (S .* E .* D)",
        )
        v = SubspaceVerifier(topo, LAYOUT, requirements=[req])
        hops = [("S", "W"), ("W", "C"), ("C", "D")]
        last = self._sync_path(v, topo, hops, close_with=["D"])
        assert last[0].verdict is Verdict.SATISFIED


class TestDispatcherReplay:
    """A new epoch's verifier replays each device's full update prefix."""

    def test_rule_from_earlier_epoch_visible_in_later_verifier(self):
        topo = ring(4)
        flash = Flash(topo, LAYOUT)
        base_rule = Rule(1, Match.wildcard(), 1)
        flash.receive(0, "e1", [insert(0, base_rule)])
        # Device 0 moves to e2 with an *additional* higher-priority rule.
        extra = Rule(2, Match.dst_prefix(0x80, 1, LAYOUT), 3)
        flash.receive(0, "e2", [insert(0, extra)])
        verifier = flash.dispatcher.verifier_for("e2")
        assert verifier is not None
        manager = verifier.members[0].manager
        table = manager.snapshot.table(0)
        assert base_rule in table  # replayed from the e1 batch
        assert extra in table

    def test_loop_across_epochs_detected_with_replay(self):
        """Device 0's rule arrives in e1; device 1 closes the loop in e2.

        Both devices eventually report e2; the e2 verifier must see device
        0's e1-era rule (it is part of its FIB prefix) to find the loop.
        """
        topo = ring(4)
        flash = Flash(topo, LAYOUT)
        flash.receive(0, "e1", [insert(0, Rule(1, Match.wildcard(), 1))])
        flash.receive(1, "e1", [])
        # Both move to e2; only device 1 changes its FIB.
        flash.receive(0, "e2", [])
        reports = flash.receive(1, "e2", [insert(1, Rule(1, Match.wildcard(), 0))])
        assert any(r.verdict is Verdict.VIOLATED for r in reports)


class TestPartitionedSimulation:
    def test_flash_with_partition_on_openr_sim(self):
        topo = internet2()
        partition = SubspacePartition.dst_prefix_partition(
            LAYOUT, [(0x00, 1), (0x80, 1)], names=["low", "high"]
        )
        buggy = topo.id_of("kans")
        sim = OpenRSimulation(topo, LAYOUT, buggy_nodes=[buggy], seed=4)
        flash = Flash(topo, LAYOUT, partition=partition, check_loops=True)
        flash.attach_to(sim)
        sim.bootstrap()
        sim.run()
        violation = flash.first_violation()
        assert violation is not None
        # Both subspace verifiers processed the epoch.
        group = flash.dispatcher.verifier_for(sim.batches[-1].tag)
        assert group is not None and len(group.members) == 2
