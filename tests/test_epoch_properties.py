"""Property tests for epoch tracking and dispatch under arbitrary orders."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ce2d.epoch import EpochTracker
from repro.headerspace.fields import dst_only_layout
from repro.network.generators import internet2, ring
from repro.routing.openr import OpenRSimulation

LAYOUT = dst_only_layout(8)


@st.composite
def epoch_schedules(draw):
    """Per-device monotone epoch sequences, interleaved arbitrarily.

    Devices progress through a global epoch chain e0 < e1 < ... but may
    skip epochs; the interleaving across devices is arbitrary (that is the
    paper's only delivery guarantee).
    """
    devices = draw(st.integers(2, 4))
    chain_length = draw(st.integers(1, 5))
    events = []
    for device in range(devices):
        indexes = draw(
            st.lists(
                st.integers(0, chain_length - 1),
                min_size=1,
                max_size=chain_length,
                unique=True,
            )
        )
        for idx in sorted(indexes):
            events.append((device, f"e{idx}"))
    # Interleave while preserving per-device order.
    rng = random.Random(draw(st.integers(0, 10_000)))
    per_device = {}
    for device, tag in events:
        per_device.setdefault(device, []).append(tag)
    interleaved = []
    pending = {d: list(tags) for d, tags in per_device.items()}
    while any(pending.values()):
        candidates = [d for d, tags in pending.items() if tags]
        device = rng.choice(candidates)
        interleaved.append((device, pending[device].pop(0)))
    return interleaved


def brute_force_active(observations):
    """Ground truth: a tag is active iff it was observed and never followed
    by a different tag on any device that reported it."""
    succeeded = set()
    seen = set()
    last = {}
    for device, tag in observations:
        old = last.get(device)
        if old is not None and old != tag:
            succeeded.add(old)
        last[device] = tag
        seen.add(tag)
    return {t for t in seen if t not in succeeded}


class TestEpochTrackerProperties:
    @given(epoch_schedules())
    @settings(max_examples=100, deadline=None)
    def test_active_set_matches_brute_force(self, schedule):
        tracker = EpochTracker()
        for device, tag in schedule:
            tracker.observe(device, tag)
        assert tracker.active_tags() == brute_force_active(schedule)

    @given(epoch_schedules())
    @settings(max_examples=60, deadline=None)
    def test_inactive_is_permanent(self, schedule):
        """Once a tag is proven stale it never becomes active again."""
        tracker = EpochTracker()
        ever_inactive = set()
        all_tags = {t for _, t in schedule}
        for device, tag in schedule:
            tracker.observe(device, tag)
            for dead in ever_inactive:
                assert not tracker.is_active(dead)
            ever_inactive |= {t for t in all_tags if tracker.is_inactive(t)}

    @given(epoch_schedules())
    @settings(max_examples=60, deadline=None)
    def test_latest_tag_per_device(self, schedule):
        tracker = EpochTracker()
        last = {}
        for device, tag in schedule:
            tracker.observe(device, tag)
            last[device] = tag
        for device, tag in last.items():
            assert tracker.latest_of(device) == tag


class TestSimulationDeterminism:
    def test_same_seed_same_batches(self):
        def run():
            topo = internet2()
            sim = OpenRSimulation(topo, LAYOUT, seed=9)
            sim.bootstrap()
            sim.run()
            sim.fail_link_by_name("chic", "kans", at=sim.loop.now + 0.2)
            sim.run()
            return [
                (round(b.time, 9), b.device, b.tag, len(b.updates))
                for b in sim.batches
            ]

        assert run() == run()

    def test_different_seed_different_timing(self):
        topo = internet2()
        sims = []
        for seed in (1, 2):
            sim = OpenRSimulation(topo, LAYOUT, seed=seed)
            sim.bootstrap()
            sim.run()
            sims.append([round(b.time, 9) for b in sim.batches])
        assert sims[0] != sims[1]

    def test_epoch_tags_identical_across_devices_per_state(self):
        topo = ring(4)
        sim = OpenRSimulation(topo, LAYOUT, seed=3)
        sim.bootstrap()
        sim.run()
        sim.fail_link(0, 1, at=sim.loop.now + 0.1)
        sim.run()
        tags_per_epoch = {}
        for b in sim.batches:
            tags_per_epoch.setdefault(b.tag, set()).add(b.device)
        # Two network states → exactly two distinct tags, each reported by
        # every switch.
        assert len(tags_per_epoch) == 2
        for devices in tags_per_epoch.values():
            assert devices == set(topo.switches())
