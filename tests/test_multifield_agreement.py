"""Cross-verifier agreement on MULTI-FIELD data planes (the ecmp shape).

The single-field agreement suite lives in test_baselines.py; this one
stresses the representations where they diverge most: two-field matches
(dst × src), where Delta-net*'s flattened intervals must enumerate dst
values and BDDs must interleave fields.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.apkeep import APKeepVerifier
from repro.baselines.deltanet import DeltaNetVerifier
from repro.core.model_manager import ModelWriter
from repro.dataplane.rule import DROP, Rule
from repro.dataplane.update import delete, insert
from repro.headerspace.fields import dst_src_layout
from repro.headerspace.match import Match, Pattern

LAYOUT = dst_src_layout(3, 3)
DEVICES = [0, 1]


@st.composite
def two_field_blocks(draw):
    count = draw(st.integers(0, 8))
    updates = []
    used = {d: set() for d in DEVICES}
    for _ in range(count):
        device = draw(st.integers(0, 1))
        priority = draw(st.integers(0, 20))
        if priority in used[device]:
            continue
        used[device].add(priority)
        patterns = {}
        if draw(st.booleans()):
            length = draw(st.integers(0, 3))
            patterns["dst"] = Pattern.prefix(draw(st.integers(0, 7)), length, 3)
        if draw(st.booleans()):
            length = draw(st.integers(0, 3))
            patterns["src"] = Pattern.prefix(draw(st.integers(0, 7)), length, 3)
        if draw(st.booleans()) and "dst" not in patterns:
            patterns["dst"] = Pattern.suffix(
                draw(st.integers(0, 7)), draw(st.integers(1, 3)), 3
            )
        action = draw(st.sampled_from([1, 2, DROP]))
        updates.append(insert(device, Rule(priority, Match(patterns), action)))
    return updates


def bits_of(values):
    out = {}
    for name in LAYOUT.field_names():
        out.update(dict(LAYOUT.bits_of(name, values[name])))
    return out


@given(two_field_blocks())
@settings(max_examples=30, deadline=None)
def test_three_verifiers_agree_exhaustively(updates):
    flash = ModelWriter(DEVICES, LAYOUT)
    apkeep = APKeepVerifier(DEVICES, LAYOUT)
    deltanet = DeltaNetVerifier(DEVICES, LAYOUT)
    flash.submit(updates)
    flash.flush()
    apkeep.process_updates(updates)
    deltanet.process_updates(updates)
    for header in range(LAYOUT.universe_size):
        values = LAYOUT.unflatten(header)
        expected = flash.snapshot.behavior(values)
        assert flash.model.behavior(bits_of(values)) == expected
        assert apkeep.behavior(bits_of(values)) == expected
        assert deltanet.behavior(values) == expected


@given(two_field_blocks(), st.data())
@settings(max_examples=20, deadline=None)
def test_agreement_survives_deletions(updates, data):
    flash = ModelWriter(DEVICES, LAYOUT)
    apkeep = APKeepVerifier(DEVICES, LAYOUT)
    deltanet = DeltaNetVerifier(DEVICES, LAYOUT)
    flash.submit(updates)
    flash.flush()
    apkeep.process_updates(updates)
    deltanet.process_updates(updates)
    if updates:
        doomed = data.draw(
            st.lists(st.sampled_from(updates), unique=True, max_size=3)
        )
        deletions = [delete(u.device, u.rule) for u in doomed]
        flash.submit(deletions)
        flash.flush()
        apkeep.process_updates(deletions)
        deltanet.process_updates(deletions)
    flash.model.check_invariants()
    apkeep.check_invariants()
    for header in range(0, LAYOUT.universe_size, 3):
        values = LAYOUT.unflatten(header)
        expected = flash.snapshot.behavior(values)
        assert apkeep.behavior(bits_of(values)) == expected
        assert deltanet.behavior(values) == expected


@given(two_field_blocks())
@settings(max_examples=20, deadline=None)
def test_interval_expansion_accounting(updates):
    """Delta-net* atom count upper-bounds Flash's EC count (atoms refine ECs)."""
    flash = ModelWriter(DEVICES, LAYOUT)
    deltanet = DeltaNetVerifier(DEVICES, LAYOUT)
    flash.submit(updates)
    flash.flush()
    deltanet.process_updates(updates)
    assert deltanet.num_ecs() == flash.num_ecs()
    assert deltanet.num_atoms >= flash.num_ecs()
