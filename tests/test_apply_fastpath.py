"""Fast apply path ≡ reference cross product, plus memory accounting.

The support-pruned, signature-filtered, split-based
:meth:`InverseModel.apply_overwrites` must produce exactly the same
model as the retained :meth:`apply_overwrites_reference` on arbitrary
EC tables and overwrite blocks — these property tests drive both paths
over the same random streams (seeded via ``--repro-seed``) and compare
the resulting vec→predicate maps after every block.
"""

import pytest

from repro.bdd.predicate import PredicateEngine
from repro.bdd.reference import ReferenceBDD
from repro.core.actiontree import ActionTreeStore
from repro.core.inverse_model import InverseModel
from repro.core.overwrite import Overwrite, atomic, make_delta

from .conftest import case_rng
from .test_bdd_split import NUM_VARS, random_pred

DEVICES = [0, 1, 2, 3]


def fresh_model(kind: str):
    bdd = ReferenceBDD(NUM_VARS) if kind == "reference" else None
    engine = PredicateEngine(NUM_VARS, bdd=bdd)
    store = ActionTreeStore()
    return engine, InverseModel(engine, store, DEVICES)


def canonical(model: InverseModel):
    """Behavior-keyed view, independent of dict order and origins."""
    out = {}
    for pred, vec in model.entries():
        actions = tuple(sorted(model.store.to_dict(vec).items()))
        existing = out.get(actions)
        out[actions] = pred if existing is None else existing | pred
    return {actions: pred.node for actions, pred in out.items()}


def random_block(engine, rng, max_ows=6):
    """A random conflict-free overwrite block (disjoint per-device work)."""
    ows = []
    for _ in range(rng.randint(1, max_ows)):
        pred = random_pred(engine, rng)
        device = rng.choice(DEVICES)
        action = rng.randint(0, 9)
        if rng.random() < 0.3:
            delta = make_delta(
                {device: action, rng.choice(DEVICES): rng.randint(0, 9)}
            )
            ows.append(Overwrite(pred, delta))
        else:
            ows.append(atomic(pred, device, action))
    return ows


@pytest.mark.parametrize("kind", ["fast", "reference"])
def test_fast_apply_equals_reference_on_random_blocks(kind):
    rng = case_rng(0xAB01)
    for trial in range(12):
        engine_a, fast = fresh_model(kind)
        engine_b, ref = fresh_model(kind)
        ref.fast_apply = False
        probe = PredicateEngine(NUM_VARS)
        for _ in range(6):
            seed = rng.getrandbits(32)
            block_a = random_block(engine_a, case_rng(seed))
            block_b = random_block(engine_b, case_rng(seed))
            fast.apply_overwrites(block_a)
            ref.apply_overwrites(block_b)
            fast.check_invariants()
            ref.check_invariants()
            view_a = {
                actions: probe.import_predicate(engine_a.pred(node))
                for actions, node in canonical(fast).items()
            }
            view_b = {
                actions: probe.import_predicate(engine_b.pred(node))
                for actions, node in canonical(ref).items()
            }
            assert view_a == view_b


def test_fast_apply_with_explicit_support_matches_computed():
    rng = case_rng(0xAB02)
    engine_a, with_support = fresh_model("fast")
    engine_b, without = fresh_model("fast")
    for _ in range(8):
        seed = rng.getrandbits(32)
        block_a = random_block(engine_a, case_rng(seed))
        block_b = random_block(engine_b, case_rng(seed))
        support = engine_a.disj_many([ow.predicate for ow in block_a])
        with_support.apply_overwrites(block_a, support=support)
        without.apply_overwrites(block_b)
    assert len(with_support) == len(without)
    probe = PredicateEngine(NUM_VARS)
    assert {
        a: probe.import_predicate(engine_a.pred(n))
        for a, n in canonical(with_support).items()
    } == {
        a: probe.import_predicate(engine_b.pred(n))
        for a, n in canonical(without).items()
    }


def test_disjoint_ecs_are_skipped_and_counted():
    engine, model = fresh_model("fast")
    # Split the space on variable 0, then overwrite only inside one half
    # with a block of >1 overwrites so the support pre-pass engages.
    half = engine.cube([(0, True)])
    model.apply_overwrites([atomic(half, 0, 5)])
    assert len(model) == 2
    before = engine.registry.value("mr2.apply.ecs_skipped")
    quarter = engine.cube([(0, True), (1, True)])
    eighth = engine.cube([(0, True), (1, False), (2, True)])
    model.apply_overwrites([atomic(quarter, 1, 7), atomic(eighth, 1, 8)])
    skipped = engine.registry.value("mr2.apply.ecs_skipped") - before
    # The untouched half (variable 0 false) must have been skipped.
    assert skipped >= 1
    model.check_invariants()


def test_pair_pruning_counter_advances():
    engine, model = fresh_model("fast")
    left = engine.cube([(0, False)])
    right = engine.cube([(0, True)])
    model.apply_overwrites([atomic(left, 0, 1)])
    # Both ECs overlap the block's support (one overwrite each side),
    # but each (EC, overwrite) pair on opposite sides is sig-pruned.
    before = engine.registry.value("mr2.apply.pairs_pruned")
    model.apply_overwrites(
        [
            atomic(left & engine.cube([(1, True)]), 1, 2),
            atomic(right & engine.cube([(1, True)]), 2, 3),
        ]
    )
    assert engine.registry.value("mr2.apply.pairs_pruned") > before
    model.check_invariants()


def test_noop_and_false_overwrites_leave_model_alone():
    engine, model = fresh_model("fast")
    entries_before = canonical(model)
    deltas = model.apply_overwrites(
        [atomic(engine.false, 0, 5), Overwrite(engine.true, ())]
    )
    assert canonical(model) == entries_before
    assert len(deltas) == len(model)


class TestMemoryEstimate:
    def test_shared_nodes_counted_once(self):
        engine, model = fresh_model("fast")
        rng = case_rng(0xAB03)
        for _ in range(5):
            model.apply_overwrites(random_block(engine, rng))
        per_pred_sum = sum(
            p.node_count() for p in model.predicates()
        )
        shared = engine.shared_node_count(model.predicates())
        assert shared <= per_pred_sum
        estimate = model.memory_estimate_bytes()
        assert estimate == shared * 40 + len(model) * 64

    def test_estimate_not_inflated_by_duplicated_handles(self):
        engine, model = fresh_model("fast")
        half = engine.cube([(0, True)])
        model.apply_overwrites([atomic(half, 0, 5)])
        # Two complementary ECs share their entire DAG under complement
        # edges; the estimate must not double count it.
        shared = engine.shared_node_count(model.predicates())
        assert model.memory_estimate_bytes() == shared * 40 + len(model) * 64
