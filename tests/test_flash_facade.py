"""End-to-end tests for the Flash facade (Figure 1 workflow)."""

import pytest

from repro import (
    DROP,
    Flash,
    Match,
    Rule,
    SubspacePartition,
    Verdict,
    dst_only_layout,
    insert,
    internet2,
    requirement,
)
from repro.results import LoopReport
from repro.network.generators import fabric, figure3_example, ring
from repro.routing.openr import OpenRSimulation

LAYOUT = dst_only_layout(8)


def fwd(topo, u, v, pri=1):
    return insert(topo.id_of(u), Rule(pri, Match.wildcard(), topo.id_of(v)))


class TestFlashOnline:
    def test_loop_detection_via_epochs(self):
        topo = ring(4)
        flash = Flash(topo, LAYOUT)
        flash.receive(0, "e1", [insert(0, Rule(1, Match.wildcard(), 1))])
        reports = flash.receive(1, "e1", [insert(1, Rule(1, Match.wildcard(), 0))])
        assert any(r.verdict is Verdict.VIOLATED for r in reports)
        assert flash.first_violation() is not None

    def test_requirement_verification(self):
        topo = figure3_example()
        req = requirement(
            "waypoint", topo, LAYOUT, Match.wildcard(), ["S"], "S .* [W|Y] .* D"
        )
        flash = Flash(topo, LAYOUT, requirements=[req], check_loops=False)
        flash.receive(topo.id_of("S"), "e", [fwd(topo, "S", "A")])
        reports = flash.receive(topo.id_of("A"), "e", [fwd(topo, "A", "S")])
        assert any(r.verdict is Verdict.VIOLATED for r in reports)

    def test_epoch_switch_discards_stale_verifier(self):
        topo = ring(4)
        flash = Flash(topo, LAYOUT)
        flash.receive(0, "e1", [insert(0, Rule(1, Match.wildcard(), 1))])
        flash.receive(0, "e2", [insert(0, Rule(2, Match.wildcard(), 3))])
        assert flash.dispatcher.verifier_for("e1") is None
        assert flash.dispatcher.verifier_for("e2") is not None


class TestFlashOffline:
    def test_offline_loop_free(self):
        topo = ring(4)
        flash = Flash(topo, LAYOUT)
        updates = [
            insert(0, Rule(1, Match.wildcard(), 1)),
            insert(1, Rule(1, Match.wildcard(), 2)),
            insert(2, Rule(1, Match.wildcard(), 3)),
            # device 3 drops: no loop
        ]
        reports = flash.verify_offline(updates)
        loops = [r for r in reports if isinstance(r, LoopReport)]
        assert loops[-1].verdict is Verdict.SATISFIED

    def test_offline_loop_found(self):
        topo = ring(4)
        flash = Flash(topo, LAYOUT)
        updates = [
            insert(0, Rule(1, Match.wildcard(), 1)),
            insert(1, Rule(1, Match.wildcard(), 2)),
            insert(2, Rule(1, Match.wildcard(), 3)),
            insert(3, Rule(1, Match.wildcard(), 0)),
        ]
        flash.verify_offline(updates)
        assert flash.first_violation() is not None


class TestFlashWithSubspaces:
    def test_partitioned_loop_detection(self):
        topo = ring(4)
        partition = SubspacePartition.dst_prefix_partition(
            LAYOUT, [(0x00, 1), (0x80, 1)]
        )
        flash = Flash(topo, LAYOUT, partition=partition)
        # Loop only in the high half of the space.
        high = Match.dst_prefix(0x80, 1, LAYOUT)
        flash.receive(0, "e", [insert(0, Rule(2, high, 1))])
        reports = flash.receive(1, "e", [insert(1, Rule(2, high, 0))])
        assert any(r.verdict is Verdict.VIOLATED for r in reports)

    def test_partitioned_requirements_routed(self):
        topo = figure3_example()
        partition = SubspacePartition.dst_prefix_partition(
            LAYOUT, [(0x00, 1), (0x80, 1)]
        )
        low_req = requirement(
            "low-reach",
            topo,
            LAYOUT,
            Match.dst_prefix(0x00, 1, LAYOUT),
            ["S"],
            "S .* D",
        )
        flash = Flash(
            topo, LAYOUT, requirements=[low_req], partition=partition,
            check_loops=False,
        )
        group = flash._make_verifier("e")
        # Requirement only attached to the low subspace's verifier.
        attached = [len(v.regex_verifiers) for v in group.members]
        assert attached == [1, 0]


class TestFlashWithSimulation:
    def test_attach_to_simulation(self):
        topo = internet2()
        buggy = topo.id_of("kans")
        sim = OpenRSimulation(topo, LAYOUT, buggy_nodes=[buggy], seed=2)
        flash = Flash(topo, LAYOUT)
        flash.attach_to(sim)
        sim.bootstrap()
        sim.run()
        violation = flash.first_violation()
        assert violation is not None
        assert violation.verdict is Verdict.VIOLATED
