"""GC stress tests: epoch churn, survivor integrity, table shrinkage.

The CE2D pipeline allocates waves of short-lived predicates (one wave
per update batch / consistency epoch) while a working set of port and
reachability predicates stays live across epochs.  These tests drive
that pattern through :class:`repro.bdd.predicate.PredicateEngine` and
check the three guarantees the GC design note promises:

* predicates still referenced — via handles, pins, or explicit roots —
  survive collection *bit-for-bit* (checked by structural import into an
  untouched engine, i.e. BDD equality, not just sat counts);
* the node arrays physically shrink after a sweep (dead tail truncated,
  unique table rebuilt at lower capacity);
* dropped handles actually release their nodes (weak tracking works).
"""

import random

import pytest

from repro.bdd.engine import BDD
from repro.bdd.predicate import PredicateEngine
from repro.bdd.reference import ReferenceBDD

from .conftest import case_rng

NUM_VARS = 16


def random_cube_pred(eng: PredicateEngine, rng: random.Random):
    plen = rng.randint(2, NUM_VARS - 2)
    return eng.cube([(i, bool(rng.getrandbits(1))) for i in range(plen)])


def build_wave(eng: PredicateEngine, rng: random.Random, count: int):
    """One epoch's worth of distinct predicates: an or/xor/ite rule mix.

    Alternating disjunction with xor keeps the accumulator away from
    constant TRUE (a pure OR of cubes saturates), so every returned
    predicate holds real nodes and the wave exercises allocation.
    """
    preds = []
    acc = eng.false
    for idx in range(count):
        c = random_cube_pred(eng, rng)
        acc = (acc | c) if idx & 1 else (acc ^ c)
        if idx % 4 == 3:
            acc = eng.ite(c, preds[-1], acc)
        preds.append(acc)
    return preds


class TestEpochStress:
    def test_thousands_of_predicates_across_epochs(self):
        """Eight epochs x ~250 predicates; a few survivors per epoch.

        Survivors are fingerprinted (sat count) and mirrored into a
        pristine engine *before* any collection; after all the churn,
        re-importing each survivor must reproduce the identical BDD in
        the mirror — node-for-node equality, which per the import
        contract is BDD equality across engines.
        """
        eng = PredicateEngine(NUM_VARS)
        mirror = PredicateEngine(NUM_VARS)
        rng = case_rng(1)
        survivors = []
        peak_nodes = 0
        for epoch in range(8):
            wave = build_wave(eng, rng, 250)
            keep = rng.sample(wave, 4)
            survivors.extend(
                (p, p.sat_count(), mirror.import_predicate(p)) for p in keep
            )
            peak_nodes = max(peak_nodes, eng.live_nodes)
            del wave, keep
            freed = eng.collect()
            assert freed > 0, f"epoch {epoch}: churn must free nodes"

        assert len(survivors) == 32
        assert eng.live_nodes < peak_nodes
        for pred, expected_sat, before in survivors:
            assert pred.sat_count() == expected_sat
            assert mirror.import_predicate(pred) == before

    def test_survivors_match_reference_engine(self):
        """Same epoch script on the new engine and on a ReferenceBDD-backed
        engine; surviving predicates agree structurally after GC runs that
        only the new engine performs."""
        eng = PredicateEngine(NUM_VARS)
        ref = PredicateEngine(NUM_VARS, bdd=ReferenceBDD(NUM_VARS))
        keep_new, keep_ref = [], []
        for epoch in range(4):
            rng_new, rng_ref = case_rng(50 + epoch), case_rng(50 + epoch)
            wave_new = build_wave(eng, rng_new, 120)
            wave_ref = build_wave(ref, rng_ref, 120)
            keep_new.append(wave_new[-1])
            keep_ref.append(wave_ref[-1])
            del wave_new, wave_ref
            eng.collect()
        probe = PredicateEngine(NUM_VARS)
        for a, b in zip(keep_new, keep_ref):
            assert probe.import_predicate(a) == probe.import_predicate(b)


class TestTableShrinks:
    def test_node_arrays_and_unique_table_shrink(self):
        eng = PredicateEngine(NUM_VARS)
        rng = case_rng(2)
        keep = build_wave(eng, rng, 30)[-1]
        small = eng.bdd.num_nodes
        build_wave(eng, rng, 600)
        grown = eng.bdd.num_nodes
        grown_capacity = eng.bdd.unique_capacity
        assert grown > small * 2
        freed = eng.collect()
        assert freed > 0
        assert eng.bdd.num_nodes < grown, "dead tail must be truncated"
        assert eng.bdd.unique_capacity <= grown_capacity
        assert eng.bdd.unique_used == eng.bdd.live_node_count - 1  # minus terminal
        assert keep.sat_count() > 0  # survivor still intact

    def test_dropping_handles_releases_nodes(self):
        eng = PredicateEngine(NUM_VARS)
        rng = case_rng(3)
        base = eng.live_nodes
        wave = build_wave(eng, rng, 200)
        assert eng.collect() == 0 or eng.live_nodes >= base  # all still held
        live_held = eng.live_nodes
        del wave
        assert eng.collect() > 0
        assert eng.live_nodes < live_held


class TestPinning:
    def test_pinned_raw_edge_survives_unpinned_is_reclaimed(self):
        bdd = BDD(NUM_VARS)
        rng = case_rng(4)

        def raw_stream(n):
            p = 0
            for _ in range(n):
                cube = bdd.cube(
                    [(i, bool(rng.getrandbits(1))) for i in range(rng.randint(2, 12))]
                )
                p = bdd.apply_or(p, cube)
            return p

        pinned = bdd.pin(raw_stream(40))
        count_before = bdd.sat_count(pinned)
        raw_stream(40)  # garbage: raw edges, no pins, no handles
        live_before = bdd.live_node_count
        assert bdd.collect() > 0
        assert bdd.live_node_count < live_before
        assert bdd.sat_count(pinned) == count_before

        bdd.unpin(pinned)
        assert bdd.collect() > 0  # now the pinned tree goes too

    def test_pins_nest(self):
        bdd = BDD(NUM_VARS)
        u = bdd.pin(bdd.pin(bdd.cube([(0, True), (3, False)])))
        bdd.unpin(u)
        bdd.collect()
        assert bdd.sat_count(u) == 1 << (NUM_VARS - 2)  # still protected
        bdd.unpin(u)

    def test_predicate_pin_api(self):
        eng = PredicateEngine(NUM_VARS)
        p = eng.pin(eng.cube([(1, True), (2, True)]))
        eng.collect()
        assert p.sat_count() == 1 << (NUM_VARS - 2)
        eng.unpin(p)


class TestAutoCollect:
    def test_gc_threshold_triggers_collection(self):
        eng = PredicateEngine(NUM_VARS, gc_threshold=2000)
        rng = case_rng(5)
        for _ in range(6):
            build_wave(eng, rng, 150)  # handles dropped each iteration
        assert eng.bdd.stats.gc_runs > 0
        assert eng.bdd.stats.gc_freed > 0
        assert eng.live_nodes <= 2000 + 1500  # bounded shortly after sweeps

    def test_gc_telemetry_published(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        eng = PredicateEngine(NUM_VARS, registry)
        rng = case_rng(6)
        build_wave(eng, rng, 80)
        eng.collect()
        snap = registry.snapshot()["gauges"]
        assert snap["bdd.gc.runs"] == 1
        assert snap["bdd.gc.freed"] > 0
        assert snap["bdd.gc.live"] == eng.live_nodes
        assert snap["bdd.gc.seconds"] > 0
