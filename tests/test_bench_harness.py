"""Tests for the benchmark harness itself (settings builders, runners).

The benchmark harness is part of the deliverable: these tests pin its
behaviour — correct workload shapes per Table 2, timeout semantics, result
accounting — without running full benchmarks.
"""

import pytest

from benchmarks import settings as bs
from benchmarks.harness import (
    RunResult,
    run_apkeep,
    run_deltanet,
    run_flash,
    run_flash_partitioned,
)


@pytest.fixture(scope="module")
def apsp():
    return bs.lnet_apsp()


class TestSettings:
    def test_all_settings_build(self):
        for name, maker in bs.ALL_SETTINGS.items():
            setting = maker()
            assert setting.fib_scale > 0, name
            assert setting.topology.num_devices > 0, name

    def test_trace_doubles_storm(self, apsp):
        assert len(apsp.trace_updates()) == 2 * len(apsp.storm_updates())
        assert len(apsp.storm_updates()) == apsp.fib_scale

    def test_trace_is_insert_then_delete(self, apsp):
        trace = apsp.trace_updates()
        half = len(trace) // 2
        assert all(u.is_insert for u in trace[:half])
        assert all(u.is_delete for u in trace[half:])

    def test_lnet_partition_per_pod(self, apsp):
        pods = {
            d.label("pod")
            for d in apsp.topology.devices()
            if d.label("pod") is not None
        }
        assert len(apsp.partition) == len(pods)

    def test_partition_covers_all_rack_prefixes(self, apsp):
        """Every rule's dst prefix lands in at least one subspace."""
        routed = apsp.partition.route_updates(apsp.storm_updates())
        assert sum(len(v) for v in routed.values()) >= apsp.fib_scale

    def test_trace_settings_have_loopbacks(self):
        setting = bs.i2_trace()
        assert len(setting.topology.externals()) == 9

    def test_describe(self, apsp):
        text = apsp.describe()
        assert "LNet-apsp" in text and "rules=" in text


class TestRunners:
    def test_run_flash_result_fields(self, apsp):
        updates = apsp.storm_updates()[:64]
        result = run_flash(apsp, updates)
        assert result.finished
        assert result.updates_processed == 64
        assert result.predicate_ops > 0
        assert result.ecs >= 1
        assert float(result.display_time()) >= 0

    def test_timeout_reports_partial_progress(self, apsp):
        updates = apsp.storm_updates()
        result = run_apkeep(apsp, updates, timeout=0.0)
        assert result.timed_out
        assert result.updates_processed < len(updates)
        assert result.display_time().startswith(">")

    def test_partitioned_flash_accounts_all_subspaces(self, apsp):
        updates = apsp.storm_updates()
        result = run_flash_partitioned(apsp, updates)
        assert result.finished
        assert result.ecs >= len(apsp.partition)
        assert result.setting.endswith("Subspace")

    def test_deltanet_counts_atom_ops(self, apsp):
        updates = apsp.storm_updates()[:32]
        result = run_deltanet(apsp, updates)
        assert result.predicate_ops > 0  # atom ops reported in that column

    def test_as_dict_roundtrip(self, apsp):
        result = run_flash(apsp, apsp.storm_updates()[:8])
        payload = result.as_dict()
        assert payload["system"] == "Flash"
        assert payload["updates_processed"] == 8


class TestBenchE2eGate:
    """The BENCH_flash regression-gate logic (no timed runs)."""

    def _report(self, mode="full", speedups=(1.9, 1.2, 1.1)):
        from benchmarks import bench_e2e as be

        names = list(be.SETTINGS)
        return {
            "mode": mode,
            "seed": 23,
            "settings": {
                name: {"speedup": ratio}
                for name, ratio in zip(names, speedups)
            },
        }

    def test_merge_preserves_other_mode(self, tmp_path):
        from benchmarks import bench_e2e as be

        path = str(tmp_path / "BENCH_flash.json")
        be.merge_into_baseline(self._report("full"), path)
        be.merge_into_baseline(self._report("quick"), path)
        import json

        with open(path) as f:
            payload = json.load(f)
        assert payload["schema"] == "bench_flash/1"
        assert set(payload["modes"]) == {"full", "quick"}

    def test_check_passes_against_self(self, tmp_path):
        from benchmarks import bench_e2e as be

        path = str(tmp_path / "base.json")
        report = self._report()
        be.merge_into_baseline(report, path)
        assert be.check_against_baseline(report, path) == []

    def test_check_flags_ratio_regression(self, tmp_path):
        from benchmarks import bench_e2e as be

        path = str(tmp_path / "base.json")
        be.merge_into_baseline(self._report(speedups=(2.0, 1.2, 1.1)), path)
        failures = be.check_against_baseline(
            self._report(speedups=(1.2, 1.2, 1.1)), path
        )
        assert any("regressed" in f for f in failures)

    def test_full_mode_enforces_floors(self, tmp_path):
        from benchmarks import bench_e2e as be

        path = str(tmp_path / "base.json")
        weak = self._report(speedups=(1.2, 0.8, 1.0))
        be.merge_into_baseline(weak, path)
        failures = be.check_against_baseline(weak, path)
        assert any("acceptance floor" in f for f in failures)
        assert any("end-to-end regression" in f for f in failures)
        # Quick mode gates drift only, not absolute floors.
        quick = self._report(mode="quick", speedups=(1.2, 0.8, 1.0))
        be.merge_into_baseline(quick, path)
        assert be.check_against_baseline(quick, path) == []

    def test_missing_baseline_is_a_failure(self, tmp_path):
        from benchmarks import bench_e2e as be

        failures = be.check_against_baseline(
            self._report(), str(tmp_path / "absent.json")
        )
        assert failures and "not found" in failures[0]

    def test_workloads_build_and_replay_deterministically(self):
        from benchmarks import bench_e2e as be

        for name, build in be.SETTINGS.items():
            a = build(23, True)
            b = build(23, True)
            assert a.num_updates == b.num_updates > 0
            assert len(a.blocks) == len(b.blocks)
