"""Tests for the topology model and generators."""

import pytest

from repro.errors import TopologyError
from repro.network.generators import (
    airtel,
    fabric,
    fat_tree,
    figure3_example,
    grid,
    internet2,
    line,
    ring,
    stanford,
    three_node_example,
)
from repro.network.topology import EXTERNAL, Topology


class TestTopology:
    def test_add_and_lookup(self):
        topo = Topology()
        a = topo.add_device("a")
        b = topo.add_device("b")
        topo.add_link(a, b)
        assert topo.id_of("a") == a
        assert topo.name_of(b) == "b"
        assert topo.has_link(a, b) and topo.has_link(b, a)
        assert topo.neighbors(a) == {b}

    def test_duplicate_name_rejected(self):
        topo = Topology()
        topo.add_device("a")
        with pytest.raises(TopologyError):
            topo.add_device("a")

    def test_self_loop_rejected(self):
        topo = Topology()
        a = topo.add_device("a")
        with pytest.raises(TopologyError):
            topo.add_link(a, a)

    def test_duplicate_link_rejected(self):
        topo = line(2)
        with pytest.raises(TopologyError):
            topo.add_link(0, 1)

    def test_unknown_device(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.device(0)
        with pytest.raises(TopologyError):
            topo.id_of("ghost")

    def test_externals_and_switches(self):
        topo = Topology()
        s = topo.add_device("s")
        x = topo.add_external("x", prefixes=["p0"])
        assert topo.switches() == [s]
        assert topo.externals() == [x]
        assert topo.device(x).kind == EXTERNAL
        assert topo.device(x).label("prefixes") == ["p0"]

    def test_links_and_directed_edges(self):
        topo = ring(4)
        assert topo.num_links == 4
        assert len(topo.directed_edges()) == 8
        assert (0, 1) in topo.links()

    def test_select_by_label(self):
        topo = fat_tree(4)
        tors = topo.select(role="tor")
        assert len(tors) == 4 * 2
        assert topo.select(role="tor", pod=0) == [
            d for d in tors if topo.device(d).label("pod") == 0
        ]

    def test_shortest_path_tree_line(self):
        topo = line(4)
        nh = topo.shortest_path_tree(0)
        assert nh[0] == []
        assert nh[1] == [0]
        assert nh[3] == [2]

    def test_shortest_path_tree_ecmp(self):
        # A square: two equal-cost paths from node 2 to node 0.
        topo = ring(4)
        nh = topo.shortest_path_tree(0)
        assert nh[2] == [1, 3]

    def test_shortest_path_unreachable(self):
        topo = Topology()
        topo.add_device("a")
        topo.add_device("b")
        nh = topo.shortest_path_tree(0)
        assert 1 not in nh

    def test_connected_components(self):
        topo = Topology()
        for name in "abcd":
            topo.add_device(name)
        topo.add_link(0, 1)
        comps = topo.connected_components()
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2], [3]]
        sub = topo.connected_components(nodes=[0, 2])
        assert sorted(sorted(c) for c in sub) == [[0], [2]]


class TestGenerators:
    def test_line_ring_grid(self):
        assert line(5).num_links == 4
        assert ring(5).num_links == 5
        g = grid(3, 4)
        assert g.num_devices == 12
        assert g.num_links == 3 * 3 + 2 * 4  # vertical + horizontal

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_fat_tree_structure(self):
        k = 4
        topo = fat_tree(k)
        assert topo.num_devices == k * k + (k // 2) ** 2  # pods + cores
        cores = topo.select(role="core")
        assert len(cores) == (k // 2) ** 2
        for agg in topo.select(role="agg"):
            core_neighbors = [
                n for n in topo.neighbors(agg) if topo.device(n).label("role") == "core"
            ]
            assert len(core_neighbors) == k // 2

    def test_fat_tree_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            fat_tree(3)

    def test_fabric_structure(self):
        topo = fabric(pods=2, tors_per_pod=3, fabrics_per_pod=2, spines_per_plane=2)
        assert len(topo.select(role="tor")) == 6
        assert len(topo.select(role="fabric")) == 4
        assert len(topo.select(role="spine")) == 4
        assert len(topo.externals()) == 6  # one rack per ToR
        # Every ToR links to every fabric switch of its pod plus its rack.
        for tor in topo.select(role="tor", pod=0):
            nbrs = topo.neighbors(tor)
            fabs = [n for n in nbrs if topo.device(n).label("role") == "fabric"]
            assert len(fabs) == 2
            assert topo.device(tor).label("rack") in nbrs

    def test_internet2_shape(self):
        topo = internet2()
        assert topo.num_devices == 9
        assert len(topo.directed_edges()) == 28
        assert topo.has_link(topo.id_of("chic"), topo.id_of("atla"))
        assert topo.has_link(topo.id_of("chic"), topo.id_of("kans"))

    def test_stanford_shape(self):
        topo = stanford()
        assert topo.num_devices == 16
        assert topo.num_links == 2 * 14 + 1 + 9  # dual-homing + core + extra

    def test_airtel_shape(self):
        topo = airtel()
        assert topo.num_devices == 68
        assert len(topo.directed_edges()) == 260
        assert len(topo.connected_components()) == 1

    def test_airtel_deterministic(self):
        assert airtel().links() == airtel().links()

    def test_example_topologies(self):
        fig2 = three_node_example()
        assert fig2.num_devices == 5  # 3 switches + A + GW
        fig3 = figure3_example()
        assert fig3.has_link(fig3.id_of("S"), fig3.id_of("W"))
        assert fig3.id_of("D") in fig3.switches()
