"""Tests for the formal IMT theory of Appendix C.

Checks the algebraic laws the MR2 correctness proof rests on:

* Lemma 1 — model overwrite is associative (sequential application of
  blocks equals one combined application);
* Theorem 3 — atomic overwrites commute;
* Theorems 4/5 — Reduce I / Reduce II preserve the resulting model;
* Theorem 1/2 — natural transformation and incremental IMT agree.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.predicate import PredicateEngine
from repro.core.actiontree import ActionTreeStore
from repro.core.imt import natural_transformation
from repro.core.inverse_model import InverseModel
from repro.core.model_manager import ModelWriter
from repro.core.mr2 import aggregate, reduce_by_action, reduce_by_predicate
from repro.core.overwrite import Overwrite, atomic
from repro.dataplane.update import insert
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match, MatchCompiler

from .conftest import assert_model_matches_snapshot, random_rule_strategy

LAYOUT = dst_only_layout(4)
DEVICES = [0, 1, 2]
ACTIONS = [1, 2, 3]


def fresh_model():
    engine = PredicateEngine(LAYOUT.total_bits)
    store = ActionTreeStore()
    compiler = MatchCompiler(engine, LAYOUT)
    return engine, store, compiler, InverseModel(engine, store, DEVICES)


def model_fingerprint(model):
    return frozenset((p.node, v) for p, v in model.entries())


@st.composite
def atomic_overwrite_specs(draw):
    """Specs (device, prefix-value, prefix-len, action) for atomic overwrites.

    Overwrites on the same device are made disjoint by construction is NOT
    enforced here — commutativity (Theorem 3) holds for conflict-free sets,
    so same-device specs draw distinct prefixes of the same length.
    """
    count = draw(st.integers(1, 4))
    length = draw(st.integers(1, 3))
    specs = []
    used = {}
    for _ in range(count):
        device = draw(st.integers(0, len(DEVICES) - 1))
        slot = draw(st.integers(0, (1 << length) - 1))
        if slot in used.setdefault(device, set()):
            continue  # keep same-device predicates disjoint (conflict-free)
        used[device].add(slot)
        action = draw(st.sampled_from(ACTIONS))
        specs.append((device, slot << (4 - length), length, action))
    return specs


def build_overwrites(compiler, specs):
    return [
        atomic(
            compiler.compile(Match.dst_prefix(value, length, LAYOUT)),
            device,
            action,
        )
        for device, value, length, action in specs
    ]


class TestTheorem3Commutativity:
    @given(atomic_overwrite_specs(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_atomic_overwrites_commute(self, specs, rng):
        engine, store, compiler, model_a = fresh_model()
        model_b = InverseModel(engine, store, DEVICES)
        ows = build_overwrites(compiler, specs)
        shuffled = list(ows)
        rng.shuffle(shuffled)
        # Apply one by one, in two different orders.
        for ow in ows:
            model_a.apply_overwrites([ow])
        for ow in shuffled:
            model_b.apply_overwrites([ow])
        assert model_fingerprint(model_a) == model_fingerprint(model_b)


class TestLemma1Associativity:
    @given(atomic_overwrite_specs())
    @settings(max_examples=40, deadline=None)
    def test_blockwise_equals_stepwise(self, specs):
        engine, store, compiler, model_block = fresh_model()
        model_steps = InverseModel(engine, store, DEVICES)
        ows = build_overwrites(compiler, specs)
        model_block.apply_overwrites(ows)
        for ow in ows:
            model_steps.apply_overwrites([ow])
        assert model_fingerprint(model_block) == model_fingerprint(model_steps)


class TestReduceTheorems:
    @given(atomic_overwrite_specs())
    @settings(max_examples=50, deadline=None)
    def test_aggregation_preserves_model(self, specs):
        engine, store, compiler, model_raw = fresh_model()
        model_agg = InverseModel(engine, store, DEVICES)
        ows = build_overwrites(compiler, specs)
        model_raw.apply_overwrites(ows)
        model_agg.apply_overwrites(aggregate(ows))
        assert model_fingerprint(model_raw) == model_fingerprint(model_agg)

    @given(atomic_overwrite_specs())
    @settings(max_examples=40, deadline=None)
    def test_reduce_i_alone_preserves_model(self, specs):
        engine, store, compiler, model_raw = fresh_model()
        model_red = InverseModel(engine, store, DEVICES)
        ows = build_overwrites(compiler, specs)
        model_raw.apply_overwrites(ows)
        model_red.apply_overwrites(reduce_by_action(ows))
        assert model_fingerprint(model_raw) == model_fingerprint(model_red)

    def test_reduce_counts(self):
        engine, store, compiler, _ = fresh_model()
        p = compiler.compile(Match.dst_prefix(0, 1, LAYOUT))
        q = compiler.compile(Match.dst_prefix(8, 1, LAYOUT))
        ows = [atomic(p, 0, 1), atomic(q, 0, 1), atomic(p, 1, 2), atomic(p, 2, 3)]
        after_i = reduce_by_action(ows)
        assert len(after_i) == 3  # (0,1) merged across p,q
        after_ii = reduce_by_predicate(after_i)
        assert len(after_ii) == 2  # (1,2) and (2,3) share predicate p


class TestTheorem2Equivalence:
    @given(
        st.lists(random_rule_strategy(LAYOUT, ACTIONS), max_size=10), st.data()
    )
    @settings(max_examples=30, deadline=None)
    def test_incremental_equals_natural(self, rules, data):
        manager = ModelWriter(DEVICES, LAYOUT)
        updates = [
            insert(data.draw(st.integers(0, 2), label="dev"), r) for r in rules
        ]
        half = len(updates) // 2
        manager.submit(updates[:half])
        manager.flush()
        manager.submit(updates[half:])
        manager.flush()
        natural = natural_transformation(
            manager.snapshot, manager.compiler, manager.store
        )
        assert model_fingerprint(manager.model) == model_fingerprint(natural)
        assert_model_matches_snapshot(manager.model, manager.snapshot, LAYOUT)
