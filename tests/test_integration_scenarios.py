"""Realistic end-to-end scenarios across every module boundary.

Deliberately broad integration tests: a fabric data center with per-rack
requirements, fault injection (misconfigured next hop, dropped prefix,
cross-pod loop) and the full Flash stack — generators → traces → dispatcher
→ Fast IMT → CE2D → verdicts.
"""

import pytest

from repro.results import LoopReport, Verdict
from repro.core.subspace import SubspacePartition
from repro.dataplane.rule import DROP, Rule
from repro.dataplane.update import insert
from repro.fibgen.shortest_path import std_fib
from repro.flash import Flash
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.generators import fabric
from repro.spec.requirement import requirement

LAYOUT = dst_only_layout(8)


@pytest.fixture(scope="module")
def clean_fabric():
    topo = fabric(pods=2, tors_per_pod=2, fabrics_per_pod=2, spines_per_plane=1)
    fibs = std_fib(topo, LAYOUT)
    return topo, fibs


def rack_requirements(topo):
    """Per-rack all-ToR reachability requirements."""
    reqs = []
    for rack in topo.externals():
        value, length = topo.device(rack).label("prefixes")[0]
        reqs.append(
            requirement(
                f"reach-{topo.name_of(rack)}",
                topo,
                LAYOUT,
                Match.dst_prefix(value, length, LAYOUT),
                ["[role=tor]"],
                ". .* >",
            )
        )
    return reqs


def feed_all(flash, topo, fibs, mutate=None):
    """Feed every device's FIB as one epoch; `mutate(device, rules)` can
    inject faults."""
    reports = []
    for device in topo.switches():
        rules = list(fibs.get(device, ()))
        if mutate is not None:
            rules = mutate(device, rules)
        reports = flash.receive(
            device, "epoch", [insert(device, r) for r in rules]
        )
    return reports


class TestCleanFabric:
    def test_all_requirements_satisfied_and_loop_free(self, clean_fabric):
        topo, fibs = clean_fabric
        reqs = rack_requirements(topo)
        flash = Flash(topo, LAYOUT, requirements=reqs, check_loops=True)
        reports = feed_all(flash, topo, fibs)
        assert all(r.verdict is Verdict.SATISFIED for r in reports), reports

    def test_with_subspace_partition(self, clean_fabric):
        topo, fibs = clean_fabric
        partition = SubspacePartition.dst_prefix_partition(
            LAYOUT, [(0x00, 1), (0x80, 1)]
        )
        reqs = rack_requirements(topo)
        flash = Flash(
            topo, LAYOUT, requirements=reqs, check_loops=True,
            partition=partition,
        )
        reports = feed_all(flash, topo, fibs)
        assert flash.first_violation() is None
        assert all(r.verdict is not Verdict.VIOLATED for r in reports)


class TestFaultInjection:
    def test_dropped_prefix_breaks_one_requirement(self, clean_fabric):
        topo, fibs = clean_fabric
        reqs = rack_requirements(topo)
        victim_rack = topo.externals()[0]
        value, length = topo.device(victim_rack).label("prefixes")[0]
        victim_match = Match.dst_prefix(value, length, LAYOUT)
        victim_tor = topo.select(role="tor", pod=0)[0]

        def mutate(device, rules):
            if device != victim_tor:
                return rules
            # The ToR drops the victim prefix instead of delivering it.
            return [
                Rule(r.priority + 1, r.match, DROP)
                if r.match == victim_match
                else r
                for r in rules
            ] + [r for r in rules if r.match == victim_match]

        flash = Flash(topo, LAYOUT, requirements=reqs, check_loops=False)
        feed_all(flash, topo, fibs, mutate)
        verdicts = {}
        for report in flash.dispatcher.reports:
            verdicts[report.requirement] = report.verdict
        victim_req = f"reach-{topo.name_of(victim_rack)}"
        assert verdicts[victim_req] is Verdict.VIOLATED
        # Other racks' requirements stay satisfied.
        others = [v for k, v in verdicts.items() if k != victim_req]
        assert all(v is Verdict.SATISFIED for v in others)

    def test_cross_pod_loop_detected(self, clean_fabric):
        topo, fibs = clean_fabric
        # Two fabric switches point a foreign prefix at each other.
        fab_a = topo.select(role="fabric", pod=0)[0]
        fab_b = None
        for candidate in topo.select(role="spine"):
            if topo.has_link(fab_a, candidate):
                fab_b = candidate
                break
        assert fab_b is not None
        foreign = Match.dst_prefix(0xC0, 2, LAYOUT)

        def mutate(device, rules):
            if device == fab_a:
                return rules + [Rule(9, foreign, fab_b)]
            if device == fab_b:
                return rules + [Rule(9, foreign, fab_a)]
            return rules

        flash = Flash(topo, LAYOUT, check_loops=True)
        feed_all(flash, topo, fibs, mutate)
        violation = flash.first_violation()
        assert violation is not None
        assert isinstance(violation, LoopReport)
        assert set(violation.loop_path) >= {fab_a, fab_b}

    def test_loop_found_before_full_epoch(self, clean_fabric):
        """The cross-pod loop is reported as soon as both culprits sync."""
        topo, fibs = clean_fabric
        fab_a = topo.select(role="fabric", pod=0)[0]
        fab_b = next(
            c for c in topo.select(role="spine") if topo.has_link(fab_a, c)
        )
        foreign = Match.dst_prefix(0xC0, 2, LAYOUT)
        flash = Flash(topo, LAYOUT, check_loops=True)
        r = flash.receive(
            fab_a, "e", [insert(fab_a, Rule(9, foreign, fab_b))]
        )
        assert all(x.verdict is Verdict.UNKNOWN for x in r)
        r = flash.receive(
            fab_b, "e", [insert(fab_b, Rule(9, foreign, fab_a))]
        )
        assert any(x.verdict is Verdict.VIOLATED for x in r)
        # Only 2 of the switches have reported.
        group = flash.dispatcher.verifier_for("e")
        assert group.num_synced == 2
