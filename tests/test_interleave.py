"""The interleaving explorer: POR enumeration, per-step invariants,
epoch-machinery races, and joint (trace, order) shrinking.

The centerpiece fixture is a handcrafted *transient loop*: a two-switch
chain where deleting the forward rule races an insert of a higher-
priority backward rule.  One interleaving visits a looping intermediate
state, the other never does — final states are identical, so only a
checker that asserts invariants in **every intermediate state** can tell
the orders apart.
"""

import pytest

from repro.analysis import find_blackholes
from repro.bdd import PredicateEngine
from repro.core import CommutativityAnalyzer, ModelWriter
from repro.dataplane import DROP, Rule, delete, insert
from repro.difftest import (
    InterleaveCase,
    InterleaveRunner,
    InterleaveShrinker,
    InterleavingExplorer,
    ReferenceOracle,
    RequirementSpec,
    Scenario,
    ScenarioGenerator,
)
from repro.difftest.interleave import model_step_verdicts
from repro.difftest.runner import DiffResult, Divergence
from repro.errors import ReproError
from repro.flash import Flash
from repro.headerspace import HeaderLayout, Match, Pattern
from repro.resilience import EpochGate
from repro.results import LoopReport, Verdict, report_from_dict

LAYOUT_FIELDS = (("dst", 2),)

# The three rules of the transient-loop story (devices: s0=0, s1=1, x=2).
R_FWD0 = Rule(1, Match.wildcard(), 1)  # s0 -> s1
R_FWD1 = Rule(1, Match.wildcard(), 2)  # s1 -> x (external sink)
R_BACK = Rule(2, Match.wildcard(), 0)  # s1 -> s0, shadows R_FWD1


def transient_loop_scenario() -> Scenario:
    """Prefix installs s0->s1->x; the 2-update block races a delete of
    s0's forward rule against an insert of a backward rule on s1.

    Block order [insert, delete] forwards s0->s1->s0 for one step — a
    transient loop.  Block order [delete, insert] never loops.  Both
    orders converge to the same final tables.
    """
    epoch = "e-transient"
    return Scenario(
        name="transient_loop",
        seed=0,
        layout_fields=LAYOUT_FIELDS,
        devices=(
            {"name": "s0", "kind": "switch"},
            {"name": "s1", "kind": "switch"},
            {"name": "x", "kind": "external", "prefixes": [[0, 0]]},
        ),
        links=((0, 1), (1, 2)),
        epoch=epoch,
        order=(0, 1),
        updates=(
            insert(0, R_FWD0, epoch),
            insert(1, R_FWD1, epoch),
            delete(0, R_FWD0, epoch),  # block index 0
            insert(1, R_BACK, epoch),  # block index 1
        ),
        requirements=(
            RequirementSpec(
                name="reach-0-s0", sources=("s0",), expression="s0 .* >"
            ),
        ),
        description="delete of the forward rule races a higher-priority "
        "backward insert; one interleaving loops transiently",
    )


def _analyzer(layout: HeaderLayout) -> CommutativityAnalyzer:
    return CommutativityAnalyzer(PredicateEngine(layout.total_bits), layout)


def _exact_insert(device: int, value: int, action) -> "object":
    return insert(
        device, Rule(1, Match({"dst": Pattern.exact(value, 2)}), action)
    )


# ---------------------------------------------------------------------------
# the explorer: enumeration counts and reduction
# ---------------------------------------------------------------------------
class TestInterleavingExplorer:
    def test_all_commuting_block_explores_exactly_one_order(self):
        """Three cross-device updates with disjoint footprints: 3! valid
        orders, one Mazurkiewicz trace — POR keeps a single order."""
        layout = HeaderLayout(list(LAYOUT_FIELDS))
        block = [
            _exact_insert(0, 0, DROP),
            _exact_insert(1, 1, DROP),
            _exact_insert(2, 2, DROP),
        ]
        explorer = InterleavingExplorer(block, _analyzer(layout))
        assert explorer.possible_orders() == 6
        reduced = list(explorer.reduced())
        assert len(reduced) == 1
        assert explorer.sleep_prunes > 0
        assert len(list(explorer.exhaustive())) == 6

    def test_dependent_pair_explores_both_orders(self):
        layout = HeaderLayout(list(LAYOUT_FIELDS))
        scenario = transient_loop_scenario()
        block = list(scenario.updates[2:])
        explorer = InterleavingExplorer(block, _analyzer(layout))
        assert explorer.possible_orders() == 2
        assert sorted(explorer.reduced()) == [(0, 1), (1, 0)]

    def test_possible_orders_is_multinomial(self):
        """Two updates on one device, one on another: 3!/2! = 3 orders,
        and every one preserves the per-device sub-sequence."""
        layout = HeaderLayout(list(LAYOUT_FIELDS))
        block = [
            _exact_insert(0, 0, DROP),
            _exact_insert(0, 1, DROP),
            _exact_insert(1, 2, DROP),
        ]
        explorer = InterleavingExplorer(block, _analyzer(layout))
        assert explorer.possible_orders() == 3
        orders = list(explorer.exhaustive())
        assert len(orders) == 3
        for order in orders:
            assert order.index(0) < order.index(1)  # device 0's chain

    def test_reduced_is_subset_of_exhaustive(self):
        layout = HeaderLayout(list(LAYOUT_FIELDS))
        block = [
            _exact_insert(0, 0, DROP),
            _exact_insert(0, 1, DROP),
            _exact_insert(1, 0, DROP),  # overlaps block[0]
            _exact_insert(2, 2, DROP),
        ]
        explorer = InterleavingExplorer(block, _analyzer(layout))
        exhaustive = set(explorer.exhaustive())
        reduced = set(explorer.reduced())
        assert reduced <= exhaustive
        assert 0 < len(reduced) < len(exhaustive)


# ---------------------------------------------------------------------------
# the runner: seeded scenarios, order dependence, POR self-check
# ---------------------------------------------------------------------------
class TestInterleaveRunner:
    def test_seeded_scenarios_replay_clean(self):
        """Generated blocks: every intermediate state of every explored
        order agrees with the oracle, and the self-check passes."""
        runner = InterleaveRunner(block_tail=4)
        explored = possible = 0
        for scenario in ScenarioGenerator(seed=11, profile="smoke").stream(3):
            result = runner.run(scenario)
            assert result.ok, (scenario.name, result.divergences)
            report = runner.last_report
            assert report.self_check in ("passed", "skipped")
            assert report.states_checked > 0
            explored += report.orders_explored
            possible += report.orders_possible
        # POR must have measurably pruned somewhere in the sample.
        assert explored < possible

    def test_transient_loop_is_order_dependent_but_not_divergent(self):
        runner = InterleaveRunner(block_tail=2)
        result = runner.run(transient_loop_scenario())
        assert result.ok, result.divergences
        report = runner.last_report
        assert report.orders_explored == 2
        assert report.order_dependent is True
        assert report.self_check == "passed"
        # Every intermediate state of every order was checked — the
        # shared pre-block state plus one per update, per order.
        assert report.states_checked == 2 * (2 + 1)

    def test_preexisting_loop_fact_needs_the_preblock_state(self):
        """Fuzzer-found POR subtlety, pinned: the prefix leaves dst=1
        looping; block index 0 (delete s0's forward rule) fixes it and
        index 1 is a commuting bystander on another header and device.
        The DFS explores device 0's chain first, so the single reduced
        representative (0, 1) kills the loop with its first move and
        the pre-existing loop fact is only observable at step 0 — while
        the pruned order (1, 0) re-observes it at step 1.  Unless the
        shared pre-block state is part of the fact union, the soundness
        self-check flags this sound reduction as unsound."""
        epoch = "e-preloop"
        fwd = Rule(1, Match({"dst": Pattern.exact(1, 2)}), 1)
        back = Rule(1, Match({"dst": Pattern.exact(1, 2)}), 0)
        scenario = Scenario(
            name="preexisting_loop",
            seed=0,
            layout_fields=LAYOUT_FIELDS,
            devices=(
                {"name": "s0", "kind": "switch"},
                {"name": "s1", "kind": "switch"},
                {"name": "x", "kind": "external", "prefixes": [[0, 0]]},
            ),
            links=((0, 1), (1, 2)),
            epoch=epoch,
            order=(0, 1),
            updates=(
                insert(0, fwd, epoch),  # s0 -> s1 for dst=1
                insert(1, back, epoch),  # s1 -> s0: loop
                delete(0, fwd, epoch),  # block index 0: fixes the loop
                # block index 1: commuting bystander on dst=2
                insert(
                    1,
                    Rule(1, Match({"dst": Pattern.exact(2, 2)}), DROP),
                    epoch,
                ),
            ),
            requirements=(),
            description="pre-block state loops on dst=1; the reduced "
            "representative fixes it at step 1",
        )
        # The pre-block state really does loop (the fact at stake).
        layout = scenario.build_layout()
        topology = scenario.build_topology()
        writer = ModelWriter(sorted(topology.switches()), layout)
        writer.submit(scenario.updates[:2])
        writer.flush()
        loop_verdict, _ = model_step_verdicts(writer.model, topology, (), ())
        assert loop_verdict is Verdict.VIOLATED
        runner = InterleaveRunner(block_tail=2)
        result = runner.run(scenario)
        assert result.ok, result.divergences
        report = runner.last_report
        assert report.orders_possible == 2
        assert report.orders_explored == 1  # one trace class
        assert report.self_check == "passed"

    def test_forced_misclassification_is_caught_by_self_check(self):
        """Injecting a deliberate commutativity misclassification prunes
        the looping order; the POR soundness self-check must notice the
        missing violation facts."""
        runner = InterleaveRunner(
            block_tail=2, force_commute=lambda a, b: True
        )
        result = runner.run(transient_loop_scenario())
        assert not result.ok
        assert "por-unsound" in result.kinds
        report = runner.last_report
        assert report.self_check == "failed"
        assert report.orders_explored == 1  # the loop-free order only
        assert report.commute["forced"] > 0
        registry = runner.telemetry.registry
        assert registry.value("difftest.interleave.selfcheck.failures") == 1

    def test_pinned_order_replay(self):
        runner = InterleaveRunner(block_tail=2)
        scenario = transient_loop_scenario()
        result = runner.run_order(scenario, (1, 0))
        assert result.ok, result.divergences
        assert result.stats["orders_explored"] == 1
        assert runner.last_report.self_check == "skipped"

    def test_case_round_trip(self):
        runner = InterleaveRunner(block_tail=2)
        scenario = transient_loop_scenario()
        result = DiffResult(scenario)
        result.stats["minimized_order"] = [1, 0]
        case = runner.case_for(scenario, result)
        assert case.orders == ((1, 0),)
        data = case.as_dict()
        assert data["kind"] == "interleave"
        rebuilt = InterleaveCase.from_dict(data)
        assert rebuilt.as_dict() == data
        replay = runner.run_case(rebuilt)
        assert replay.ok, replay.divergences

    def test_case_from_dict_rejects_wrong_kind(self):
        case = InterleaveCase(scenario=transient_loop_scenario())
        data = case.as_dict()
        data["kind"] = "chaos"
        with pytest.raises(ReproError):
            InterleaveCase.from_dict(data)

    def test_interleave_report_round_trip(self):
        runner = InterleaveRunner(block_tail=2)
        runner.run(transient_loop_scenario())
        report = runner.last_report
        data = report.as_dict()
        rebuilt = report_from_dict(data)
        assert rebuilt.as_dict() == data
        assert rebuilt.verdict is Verdict.SATISFIED


# ---------------------------------------------------------------------------
# intermediate-state invariants: model and epoch machinery (regression)
# ---------------------------------------------------------------------------
class TestIntermediateStateInvariants:
    def test_loop_and_blackhole_invariants_at_every_step(self):
        """Walk the looping order by hand and pin the invariant values
        of each intermediate state: loop appears after the backward
        insert, blackhole appears after the delete."""
        scenario = transient_loop_scenario()
        layout = scenario.build_layout()
        topology = scenario.build_topology()
        requirements = scenario.build_requirements(topology, layout)
        prefix, block = scenario.updates[:2], scenario.updates[2:]

        manager = ModelWriter(
            sorted(topology.switches()), layout, block_threshold=1
        )
        manager.submit(prefix)
        manager.flush()
        spaces = [
            manager.compiler.compile(r.packet_space) for r in requirements
        ]
        assert find_blackholes(manager, topology) == []

        # Step 1 of order [insert R_BACK, delete R_FWD0]: transient loop,
        # still no blackhole.
        manager.submit([block[1]])
        manager.flush()
        loop_verdict, _ = model_step_verdicts(
            manager.model, topology, requirements, spaces
        )
        assert loop_verdict is Verdict.VIOLATED
        assert find_blackholes(manager, topology) == []

        # Step 2: the delete lands; loop gone, s0 now blackholes all
        # traffic (empty table).
        manager.submit([block[0]])
        manager.flush()
        loop_verdict, req_verdicts = model_step_verdicts(
            manager.model, topology, requirements, spaces
        )
        assert loop_verdict is Verdict.SATISFIED
        assert req_verdicts == (Verdict.VIOLATED,)
        holes = find_blackholes(manager, topology)
        assert [b.device for b in holes] == [0]

        # The oracle agrees with the model on the final state.
        oracle = ReferenceOracle(topology, layout)
        oracle.process_updates(scenario.updates)
        for header in range(layout.universe_size):
            values = layout.unflatten(header)
            assert oracle.snapshot.behavior(values)[0] == DROP

    def test_epoch_gate_flags_superseded_tag_race(self):
        """Orderless gate: a tag observed, superseded, then re-delivered
        on the same device is stale; other devices are unaffected."""
        gate = EpochGate()
        r = Rule(1, Match.wildcard(), 1)
        assert gate.classify(insert(0, r, "e1")) is None
        assert gate.classify(insert(0, r, "e2")) is None
        stale = gate.classify(insert(0, r, "e1"))
        assert stale is not None and "superseded" in stale
        # Device 1 is still legitimately at e1: no false positive.
        assert gate.classify(insert(1, r, "e1")) is None

    def test_epoch_gate_with_order_rejects_regression(self):
        gate = EpochGate(order=["e1", "e2"])
        r = Rule(1, Match.wildcard(), 1)
        assert gate.classify(insert(0, r, "e2")) is None
        assert gate.classify(insert(0, r, "e1")) is not None
        assert gate.classify(insert(0, r, "bogus")) is not None

    def test_dispatcher_never_resurrects_superseded_epoch(self):
        """Out-of-epoch delivery: once a device moves past a tag, a
        stale re-delivery of that tag must not reopen its verifier."""
        scenario = transient_loop_scenario()
        layout = scenario.build_layout()
        topology = scenario.build_topology()
        requirements = scenario.build_requirements(topology, layout)
        flash = Flash(
            topology, layout, requirements=requirements, check_loops=True
        )
        flash.ingest(0, [insert(0, R_FWD0, "a")], epoch="a")
        reports = flash.ingest(1, [insert(1, R_FWD1, "a")], epoch="a")
        loops = [r for r in reports if isinstance(r, LoopReport)]
        assert loops and loops[-1].verdict is Verdict.SATISFIED

        # Epoch b: the backward rule lands; once both devices report it,
        # the loop is detected and epoch a is retired.
        flash.ingest(1, [insert(1, R_BACK, "b")], epoch="b")
        reports = flash.ingest(0, [], epoch="b")
        loops = [r for r in reports if isinstance(r, LoopReport)]
        assert loops and loops[-1].verdict is Verdict.VIOLATED
        assert flash.dispatcher.tracker.is_inactive("a")
        assert flash.dispatcher.verifier_for("a") is None

        # Stale re-delivery of epoch a: no reports, no resurrection.
        stale = flash.ingest(0, [delete(0, R_FWD0, "a")], epoch="a")
        assert stale == []
        assert flash.dispatcher.tracker.is_inactive("a")
        assert flash.dispatcher.verifier_for("a") is None


# ---------------------------------------------------------------------------
# joint (trace, interleaving) shrinking
# ---------------------------------------------------------------------------
class _MarkerRunner(InterleaveRunner):
    """Deterministic stand-in for shrinker mechanics: a scenario
    diverges iff it still contains both the marker (priority 7) and the
    anchor (priority 3) update, and a pinned order diverges iff the
    marker executes *before* the anchor."""

    def _indices(self, scenario):
        marker = [
            i for i, u in enumerate(scenario.updates) if u.rule.priority == 7
        ]
        anchor = [
            i for i, u in enumerate(scenario.updates) if u.rule.priority == 3
        ]
        return marker, anchor

    def run(self, scenario, *, orders=None, **kwargs):
        result = DiffResult(scenario)
        marker, anchor = self._indices(scenario)
        if not marker or not anchor:
            return result
        if orders is not None:
            order = tuple(orders[0])
            if order.index(marker[0]) < order.index(anchor[0]):
                result.divergences.append(
                    Divergence("step-verdict", ("flash-incr", "oracle"))
                )
            return result
        bad = tuple(reversed(range(len(scenario.updates))))
        result.divergences.append(
            Divergence("step-verdict", ("flash-incr", "oracle"))
        )
        result.stats["divergent_orders"] = [list(bad)]
        return result


class TestInterleaveShrinker:
    def _scenario(self) -> Scenario:
        epoch = "e-shrink"
        updates = [insert(0, Rule(3, Match.wildcard(), 1), epoch)]  # anchor
        for value in range(3):  # filler the shrinker should drop
            updates.append(
                insert(
                    0,
                    Rule(1, Match({"dst": Pattern.exact(value, 2)}), 1),
                    epoch,
                )
            )
        updates.append(insert(1, Rule(7, Match.wildcard(), 0), epoch))  # marker
        return Scenario(
            name="shrink_me",
            seed=0,
            layout_fields=LAYOUT_FIELDS,
            devices=(
                {"name": "s0", "kind": "switch"},
                {"name": "s1", "kind": "switch"},
            ),
            links=((0, 1),),
            epoch=epoch,
            order=(0, 1),
            updates=tuple(updates),
        )

    def test_minimises_updates_and_order_jointly(self):
        shrinker = InterleaveShrinker(runner=_MarkerRunner())
        minimised, result = shrinker.shrink(self._scenario())
        assert not result.ok
        # ddmin kept exactly the two interacting updates...
        assert len(minimised.updates) == 2
        assert {u.rule.priority for u in minimised.updates} == {3, 7}
        # ...and the order pass reduced the interleaving to the single
        # necessary inversion (marker right before anchor).
        assert result.stats["minimized_order"] == [1, 0]

    def test_clean_scenario_is_left_alone(self):
        runner = InterleaveRunner(block_tail=2)
        shrinker = InterleaveShrinker(runner=runner)
        scenario = transient_loop_scenario()
        minimised, result = shrinker.shrink(scenario)
        assert result.ok
        assert minimised.updates == scenario.updates
        assert "minimized_order" not in result.stats
