"""Tests for the requirement language: parser, automata, requirements."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.generators import figure3_example
from repro.network.topology import Topology
from repro.spec.ast import (
    AndSet,
    CoverSet,
    NotSet,
    OrSet,
    RegexSet,
    SelectorContext,
)
from repro.spec.dfa import compile_path_set
from repro.spec.parser import parse_path_regex, parse_path_set
from repro.spec.requirement import Multiplicity, requirement


@pytest.fixture()
def topo():
    return figure3_example()


def devices_by_name(topo, names):
    return [topo.device(topo.id_of(n)) for n in names]


def matches(topo, expression, path_names, context=None):
    automaton = compile_path_set(parse_path_set(expression))
    ctx = context or SelectorContext()
    return automaton.matches(devices_by_name(topo, path_names), ctx)


class TestParser:
    def test_simple_regex(self, topo):
        ast = parse_path_set("S .* D")
        assert isinstance(ast, RegexSet)

    def test_figure3_expression_parses(self):
        parse_path_set("S .* [W|Y] .* D")

    def test_combinators(self):
        ast = parse_path_set("(S .* D) and not (S .* W .* D)")
        assert isinstance(ast, AndSet)
        assert isinstance(ast.right, NotSet)

    def test_or(self):
        ast = parse_path_set("(S D) or (S W D)")
        assert isinstance(ast, OrSet)

    def test_cover(self):
        ast = parse_path_set("cover (S . D)")
        assert isinstance(ast, CoverSet)

    def test_anchors_ignored(self, topo):
        assert matches(topo, "^ S D $", ["S", "D"])

    def test_empty_expression_rejected(self):
        with pytest.raises(SpecError):
            parse_path_set("")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(SpecError):
            parse_path_set("(S .* D")

    def test_dangling_star_rejected(self):
        with pytest.raises(SpecError):
            parse_path_set("S * D")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(SpecError):
            parse_path_set("(S) )")


class TestAutomatonSemantics:
    def test_exact_sequence(self, topo):
        assert matches(topo, "S A B", ["S", "A", "B"])
        assert not matches(topo, "S A B", ["S", "B", "A"])
        assert not matches(topo, "S A B", ["S", "A"])

    def test_any_star(self, topo):
        assert matches(topo, "S .* D", ["S", "D"])
        assert matches(topo, "S .* D", ["S", "A", "B", "D"])
        assert not matches(topo, "S .* D", ["A", "D"])

    def test_waypoint_alternation(self, topo):
        expr = "S .* [W|Y] .* D"
        assert matches(topo, expr, ["S", "W", "C", "D"])
        assert matches(topo, expr, ["S", "A", "B", "Y", "C", "D"])
        assert not matches(topo, expr, ["S", "A", "B", "E", "C", "D"])

    def test_star_on_atom(self, topo):
        expr = "S A* B"
        assert matches(topo, expr, ["S", "B"])
        assert matches(topo, expr, ["S", "A", "A", "B"])
        assert not matches(topo, expr, ["S", "C", "B"])

    def test_and_semantics(self, topo):
        expr = "(S .* D) and (S .* W .* D)"
        assert matches(topo, expr, ["S", "W", "C", "D"])
        assert not matches(topo, expr, ["S", "A", "B", "E", "C", "D"])

    def test_or_semantics(self, topo):
        expr = "(S W .* D) or (S A .* D)"
        assert matches(topo, expr, ["S", "W", "C", "D"])
        assert matches(topo, expr, ["S", "A", "B", "E", "C", "D"])
        assert not matches(topo, expr, ["A", "B"])

    def test_not_semantics(self, topo):
        expr = "(S .* D) and not (S .* E .* D)"
        assert matches(topo, expr, ["S", "W", "C", "D"])
        assert not matches(topo, expr, ["S", "A", "B", "E", "C", "D"])

    def test_label_selector(self):
        topo = Topology()
        topo.add_device("t0", role="tor")
        topo.add_device("a0", role="agg")
        expr = "[role=tor] [role=agg]"
        automaton = compile_path_set(parse_path_set(expr))
        ctx = SelectorContext()
        path = [topo.device(0), topo.device(1)]
        assert automaton.matches(path, ctx)
        assert not automaton.matches(list(reversed(path)), ctx)

    def test_label_matches_regex(self):
        topo = Topology()
        topo.add_device("x", zone="pod12")
        automaton = compile_path_set(parse_path_set("[zone matches pod\\d+]"))
        assert automaton.matches([topo.device(0)], SelectorContext())

    def test_destination_selector(self, topo):
        ctx = SelectorContext(frozenset([topo.id_of("NET")]))
        automaton = compile_path_set(parse_path_set("S .* >"))
        path = devices_by_name(topo, ["S", "A", "B", "E", "C", "D", "NET"])
        assert automaton.matches(path, ctx)
        assert not automaton.matches(path[:-1], ctx)

    def test_is_dead(self, topo):
        automaton = compile_path_set(parse_path_set("S D"))
        state = automaton.start()
        state = automaton.step(state, topo.device(topo.id_of("A")), SelectorContext())
        assert automaton.is_dead(state)


NAMES = ["S", "A", "B", "E", "C", "D", "W", "Y"]


@st.composite
def path_strategy(draw):
    return draw(st.lists(st.sampled_from(NAMES), min_size=0, max_size=6))


class TestAgainstPythonRe:
    """Path automata agree with Python's re on single-letter alphabets."""

    EXPRS = [
        ("S .* D", "S.*D"),
        ("S .* [W|Y] .* D", "S.*[WY].*D"),
        ("S A* B", "SA*B"),
        ("S [A|B] [C|D]", "S[AB][CD]"),
        (". . .", "..."),
    ]

    @given(path_strategy())
    @settings(max_examples=120, deadline=None)
    def test_agreement(self, path):
        topo = figure3_example()
        devices = devices_by_name(topo, path)
        text = "".join(path)
        for ours, theirs in self.EXPRS:
            automaton = compile_path_set(parse_path_set(ours))
            expected = re.fullmatch(theirs, text) is not None
            assert automaton.matches(devices, SelectorContext()) == expected, (
                ours,
                path,
            )

    @given(path_strategy())
    @settings(max_examples=80, deadline=None)
    def test_not_agreement(self, path):
        topo = figure3_example()
        devices = devices_by_name(topo, path)
        text = "".join(path)
        automaton = compile_path_set(parse_path_set("not (S .* D)"))
        expected = re.fullmatch("S.*D", text) is None
        assert automaton.matches(devices, SelectorContext()) == expected


class TestRequirement:
    def test_build_from_names(self, topo):
        layout = dst_only_layout(8)
        req = requirement(
            "waypoint",
            topo,
            layout,
            Match.wildcard(),
            ["S"],
            "S .* [W|Y] .* D",
        )
        assert req.sources == (topo.id_of("S"),)
        assert not req.is_cover
        assert req.multiplicity is Multiplicity.UNICAST

    def test_cover_unwrap(self, topo):
        layout = dst_only_layout(8)
        req = requirement(
            "cov", topo, layout, Match.wildcard(), ["S"], "cover (S .* D)"
        )
        assert req.is_cover
        req.automaton()  # compiles the inner expression

    def test_empty_sources_rejected(self, topo):
        layout = dst_only_layout(8)
        with pytest.raises(SpecError):
            requirement("x", topo, layout, Match.wildcard(), [], "S .* D")

    def test_selector_context_destinations(self, topo):
        layout = dst_only_layout(8)
        net = topo.id_of("NET")
        topo.device(net).labels["prefixes"] = [(0x00, 1)]
        req = requirement(
            "reach",
            topo,
            layout,
            Match.dst_prefix(0x00, 2, layout),
            ["S"],
            "S .* >",
        )
        ctx = req.selector_context(topo, layout)
        assert net in ctx.destination_ids
        disjoint = requirement(
            "other",
            topo,
            layout,
            Match.dst_prefix(0x80, 1, layout),
            ["S"],
            "S .* >",
        )
        assert net not in disjoint.selector_context(topo, layout).destination_ids


class TestSourceSelectors:
    def test_label_selector_sources(self):
        from repro.network.generators import fabric
        from repro.spec.requirement import resolve_sources

        topo = fabric(pods=2, tors_per_pod=2, fabrics_per_pod=2, spines_per_plane=1)
        tors = resolve_sources(topo, ["[role=tor]"])
        assert set(tors) == set(topo.select(role="tor"))

    def test_mixed_names_and_selectors(self, topo):
        from repro.spec.requirement import resolve_sources

        ids = resolve_sources(topo, ["S", "[prefixes contains 10.0]"])
        assert topo.id_of("S") in ids
        assert topo.id_of("NET") in ids

    def test_empty_selector_rejected(self, topo):
        from repro.spec.requirement import resolve_sources

        with pytest.raises(SpecError):
            resolve_sources(topo, ["[role=unicorn]"])

    def test_requirement_with_selector_sources(self):
        from repro.network.generators import fabric

        ftopo = fabric(pods=2, tors_per_pod=2, fabrics_per_pod=2,
                       spines_per_plane=1)
        layout = dst_only_layout(8)
        req = requirement(
            "all-tor-reach", ftopo, layout, Match.wildcard(),
            ["[role=tor]"], ". .* [role=spine]",
        )
        assert set(req.sources) == set(ftopo.select(role="tor"))
