"""Seeded property tests for signature-based commutativity.

The interleaving explorer prunes an order only when the
:class:`~repro.core.commute.CommutativityAnalyzer` classifies the swapped
pair as commuting, so these two properties carry the POR soundness
argument:

* **disjointness ⇒ true commutativity** — for pairs the analyzer calls
  commuting, both application orders visit the same per-header behavior
  vectors (the observation every checker derives its verdicts from);
* **non-disjoint pairs are never pruned** — whenever the footprints
  actually intersect, the analyzer must answer "dependent", and the
  signature fast path must never claim disjointness for an overlapping
  pair.

All randomness flows through :func:`case_rng`, so ``--repro-seed``
reseeds every case.
"""

from repro.bdd import PredicateEngine
from repro.core import CommutativityAnalyzer
from repro.dataplane import DROP, FibTable, Rule, RuleUpdate, insert
from repro.headerspace import HeaderLayout, Match, Pattern

from .conftest import case_rng

LAYOUT = HeaderLayout([("dst", 4)])
WIDTH = 4
CASES = 150


def _random_match(rng) -> Match:
    roll = rng.random()
    value = rng.randrange(1 << WIDTH)
    if roll < 0.40:
        return Match.dst_prefix(value, rng.randint(0, WIDTH), LAYOUT)
    if roll < 0.70:
        return Match({"dst": Pattern.exact(value, WIDTH)})
    if roll < 0.90:
        return Match(
            {"dst": Pattern.suffix(value, rng.randint(1, WIDTH), WIDTH)}
        )
    return Match.wildcard()


def _random_pair(rng) -> "tuple[RuleUpdate, RuleUpdate]":
    a = insert(
        0, Rule(rng.randint(0, 3), _random_match(rng), rng.choice([DROP, 1]))
    )
    b = insert(
        1, Rule(rng.randint(0, 3), _random_match(rng), rng.choice([DROP, 0]))
    )
    return a, b


def _analyzer(layout: HeaderLayout = LAYOUT) -> CommutativityAnalyzer:
    return CommutativityAnalyzer(PredicateEngine(layout.total_bits), layout)


def _per_header_visits(order) -> "dict[int, set]":
    """For each header: the set of behavior vectors visited along
    ``order`` (initial state, every intermediate state, final state)."""
    tables = {0: FibTable(), 1: FibTable()}
    visits = {h: set() for h in range(LAYOUT.universe_size)}

    def observe() -> None:
        for h in range(LAYOUT.universe_size):
            values = LAYOUT.unflatten(h)
            visits[h].add(
                (tables[0].lookup(values), tables[1].lookup(values))
            )

    observe()
    for update in order:
        tables[update.device].insert(update.rule)
        observe()
    return visits


class TestDisjointnessImpliesCommutativity:
    def test_commuting_pairs_are_observationally_equivalent(self):
        """analyzer says commute ⇒ both orders visit identical per-header
        behavior vectors, so no checker can tell them apart."""
        exercised = 0
        for case in range(CASES):
            rng = case_rng(case)
            a, b = _random_pair(rng)
            analyzer = _analyzer()
            if not analyzer.commutes(a, b):
                continue
            exercised += 1
            # The claimed footprint disjointness is real...
            fa, fb = analyzer.footprint(a), analyzer.footprint(b)
            assert (fa & fb).is_false
            # ...and so is the behavioral consequence.
            assert _per_header_visits([a, b]) == _per_header_visits([b, a])
        assert exercised >= 10, "sample never produced a commuting pair"

    def test_commutes_is_symmetric_and_memoized(self):
        for case in range(25):
            rng = case_rng(500 + case)
            a, b = _random_pair(rng)
            analyzer = _analyzer()
            assert analyzer.commutes(a, b) == analyzer.commutes(b, a)
            assert analyzer.stats.checks == 1  # second call hit the memo


class TestNonDisjointPairsNeverPruned:
    def test_overlapping_footprints_classified_dependent(self):
        """Counterexample hunt: an intersecting cross-device pair that
        the analyzer calls commuting would let POR prune an
        inequivalent order.  There must be none."""
        exercised = 0
        for case in range(CASES):
            rng = case_rng(1000 + case)
            a, b = _random_pair(rng)
            analyzer = _analyzer()
            fa, fb = analyzer.footprint(a), analyzer.footprint(b)
            if (fa & fb).is_false:
                continue
            exercised += 1
            assert not analyzer.commutes(a, b), (a, b)
        assert exercised >= 10, "sample never produced an overlapping pair"

    def test_signature_filter_is_sound(self):
        """sig(a) & sig(b) == 0 must imply a ∧ b = ⊥ — the fast path can
        only under-approximate commutativity, never over-approximate."""
        engine = PredicateEngine(LAYOUT.total_bits)
        analyzer = CommutativityAnalyzer(engine, LAYOUT)
        sig_hits = 0
        for case in range(CASES):
            rng = case_rng(2000 + case)
            a, b = _random_pair(rng)
            fa, fb = analyzer.footprint(a), analyzer.footprint(b)
            if engine.signature(fa) & engine.signature(fb) == 0:
                sig_hits += 1
                assert (fa & fb).is_false
        assert sig_hits >= 10, "sample never hit the signature fast path"

    def test_same_device_pairs_never_commute(self):
        """Even footprint-disjoint same-device updates are serialized."""
        analyzer = _analyzer()
        a = insert(0, Rule(1, Match({"dst": Pattern.exact(0, WIDTH)}), 1))
        b = insert(0, Rule(1, Match({"dst": Pattern.exact(15, WIDTH)}), DROP))
        assert (analyzer.footprint(a) & analyzer.footprint(b)).is_false
        assert not analyzer.commutes(a, b)
        assert analyzer.stats.same_device == 1


class TestClassifierPlumbing:
    def test_exact_fallback_on_signature_collision(self):
        """Beyond the signature horizon (> SIG_BITS vars) two disjoint
        exact matches share a signature cell; classification must fall
        back to the exact conjunction and still answer 'commutes'."""
        layout = HeaderLayout([("dst", 10)])
        engine = PredicateEngine(layout.total_bits)
        analyzer = CommutativityAnalyzer(engine, layout)
        a = insert(0, Rule(1, Match({"dst": Pattern.exact(0, 10)}), 1))
        b = insert(1, Rule(1, Match({"dst": Pattern.exact(1, 10)}), 0))
        fa, fb = analyzer.footprint(a), analyzer.footprint(b)
        assert engine.signature(fa) & engine.signature(fb) != 0
        assert analyzer.commutes(a, b)
        assert analyzer.stats.sig_disjoint == 0
        assert analyzer.stats.exact_checks == 1
        assert analyzer.stats.exact_disjoint == 1

    def test_force_commute_hook_is_counted(self):
        """The test-only misclassification hook overrides the analysis
        and is visible in the stats (the POR self-check's tripwire)."""
        analyzer = CommutativityAnalyzer(
            PredicateEngine(LAYOUT.total_bits),
            LAYOUT,
            force_commute=lambda a, b: True,
        )
        a = insert(0, Rule(1, Match.wildcard(), 1))
        b = insert(1, Rule(1, Match.wildcard(), 0))  # overlapping!
        assert analyzer.commutes(a, b)
        assert analyzer.stats.forced == 1
        assert analyzer.stats.dependent == 0

    def test_stats_as_dict_round_trip(self):
        analyzer = _analyzer()
        a = insert(0, Rule(1, Match({"dst": Pattern.exact(0, WIDTH)}), 1))
        b = insert(1, Rule(1, Match({"dst": Pattern.exact(8, WIDTH)}), 0))
        analyzer.commutes(a, b)
        data = analyzer.stats.as_dict()
        assert data["checks"] == 1
        assert data["sig_disjoint"] + data["exact_disjoint"] == 1
