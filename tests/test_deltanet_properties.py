"""Property tests for Delta-net*'s atom maintenance invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.deltanet import DeltaNetVerifier
from repro.dataplane.fib import FibSnapshot
from repro.dataplane.rule import DROP
from repro.dataplane.update import delete, insert
from repro.headerspace.fields import dst_only_layout

from .conftest import random_rule_strategy

LAYOUT = dst_only_layout(4)
DEVICES = [0, 1]

# Prefix/suffix rule construction is shared with the rest of the suite
# via conftest; unique priorities keep every delete unambiguous.
_rules = random_rule_strategy(LAYOUT, actions=[1, 2, DROP], max_priority=40)


@st.composite
def update_sequences(draw):
    """Interleaved inserts and (valid) deletes with unique priorities."""
    events = []
    installed = {d: [] for d in DEVICES}
    used = {d: set() for d in DEVICES}
    for _ in range(draw(st.integers(0, 12))):
        device = draw(st.integers(0, 1))
        if installed[device] and draw(st.booleans()):
            victim = draw(st.sampled_from(installed[device]))
            installed[device].remove(victim)
            events.append(delete(device, victim))
            continue
        rule = draw(_rules)
        if rule.priority in used[device]:
            continue
        used[device].add(rule.priority)
        installed[device].append(rule)
        events.append(insert(device, rule))
    return events


class TestAtomInvariants:
    @given(update_sequences())
    @settings(max_examples=50, deadline=None)
    def test_atoms_partition_universe(self, events):
        v = DeltaNetVerifier(DEVICES, LAYOUT)
        v.process_updates(events)
        bounds = v._bounds
        assert bounds[0] == 0
        assert bounds == sorted(set(bounds))
        assert all(0 <= b < LAYOUT.universe_size for b in bounds)

    @given(update_sequences())
    @settings(max_examples=50, deadline=None)
    def test_owner_matches_fib_semantics(self, events):
        v = DeltaNetVerifier(DEVICES, LAYOUT)
        snapshot = FibSnapshot(DEVICES)
        v.process_updates(events)
        for u in events:
            table = snapshot.table(u.device)
            if u.is_insert:
                table.insert(u.rule)
            else:
                table.delete(u.rule)
        for header in range(LAYOUT.universe_size):
            values = LAYOUT.unflatten(header)
            assert v.behavior(values) == snapshot.behavior(values)

    @given(update_sequences())
    @settings(max_examples=40, deadline=None)
    def test_behavior_constant_within_atom(self, events):
        v = DeltaNetVerifier(DEVICES, LAYOUT)
        v.process_updates(events)
        bounds = list(v._bounds) + [LAYOUT.universe_size]
        for lo, hi in zip(bounds, bounds[1:]):
            behaviors = {
                tuple(sorted(v.behavior(LAYOUT.unflatten(h)).items()))
                for h in range(lo, hi)
            }
            assert len(behaviors) == 1, (lo, hi)

    @given(update_sequences())
    @settings(max_examples=30, deadline=None)
    def test_memory_shrinks_after_full_teardown(self, events):
        """Deleting everything returns the per-atom cell storage to zero."""
        v = DeltaNetVerifier(DEVICES, LAYOUT)
        v.process_updates(events)
        installed = {}
        for u in events:
            key = (u.device, u.rule)
            if u.is_insert:
                installed[key] = u
            else:
                installed.pop(key, None)
        v.process_updates(
            delete(device, rule) for (device, rule) in list(installed)
        )
        stored = sum(
            len(cell.rules)
            for cells in v._cells.values()
            for cell in cells.values()
        )
        assert stored == 0
        for header in range(0, LAYOUT.universe_size, 3):
            assert v.behavior(LAYOUT.unflatten(header)) == {0: DROP, 1: DROP}
