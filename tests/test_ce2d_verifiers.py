"""Tests for epoch tracking, the dispatcher, Algorithm 2 and Algorithm 3."""

import itertools

import pytest

from repro.ce2d.dispatcher import CE2DDispatcher
from repro.ce2d.epoch import EpochTracker
from repro.ce2d.loop_detector import LoopDetector
from repro.results import Verdict
from repro.ce2d.verifier import SubspaceVerifier
from repro.dataplane.rule import DROP, Rule
from repro.dataplane.update import insert
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.generators import figure3_example, line, ring
from repro.network.topology import Topology
from repro.spec.requirement import Multiplicity, requirement

LAYOUT = dst_only_layout(4)


def fwd(topo, device_name, next_name, pri=1):
    """An 'everything to next hop' rule for tests."""
    topo_id = topo.id_of(device_name)
    rule = Rule(pri, Match.wildcard(), topo.id_of(next_name))
    return insert(topo_id, rule)


class TestEpochTracker:
    def test_first_tag_becomes_active(self):
        t = EpochTracker()
        assert t.observe(0, "e1")
        assert t.is_active("e1")

    def test_successor_deactivates_predecessor(self):
        t = EpochTracker()
        t.observe(0, "e1")
        t.observe(0, "e2")
        assert not t.is_active("e1")
        assert t.is_inactive("e1")
        assert t.is_active("e2")

    def test_cross_device_inactivation(self):
        # Paper's example: t2 seen before t3 on one device kills t2 globally.
        t = EpochTracker()
        t.observe(0, "t1")            # S at t1
        t.observe(1, "t2")            # A at t2
        t.observe(2, "t2")            # B at t2
        assert t.active_tags() == {"t1", "t2"}
        for dev in (0, 1, 2):
            t.observe(dev, "t3")
        assert t.active_tags() == {"t3"}
        # Late arrival of t2 from a dampened device does not resurrect it.
        assert not t.observe(3, "t2") or not t.is_active("t2")
        assert not t.is_active("t2")

    def test_same_tag_idempotent(self):
        t = EpochTracker()
        t.observe(0, "e")
        assert not t.observe(0, "e")

    def test_devices_at(self):
        t = EpochTracker()
        t.observe(0, "e")
        t.observe(1, "e")
        t.observe(2, "f")
        assert sorted(t.devices_at("e")) == [0, 1]
        assert t.latest_of(2) == "f"


class TestLoopDetector:
    """Algorithm 3 on small crafted topologies."""

    def _feed(self, verifier, topo, hops):
        """Sync devices one at a time with 'forward to next' rules."""
        reports = []
        for device_name, next_name in hops:
            reports.extend(
                verifier.receive(
                    topo.id_of(device_name), [fwd(topo, device_name, next_name)]
                )
            )
        return reports

    def test_deterministic_loop_found_early(self):
        topo = ring(4)  # 0-1-2-3-0
        verifier = SubspaceVerifier(topo, LAYOUT, check_loops=True)
        # 0 → 1 and 1 → 0 form a 2-loop; devices 2 and 3 still unsynced.
        r1 = verifier.receive(0, [insert(0, Rule(1, Match.wildcard(), 1))])
        assert r1[0].verdict is Verdict.UNKNOWN
        r2 = verifier.receive(1, [insert(1, Rule(1, Match.wildcard(), 0))])
        assert r2[0].verdict is Verdict.VIOLATED
        assert set(r2[0].loop_path) >= {0, 1}

    def test_loop_via_hyper_node_is_not_deterministic(self):
        # Figure 5(a): C and X unsynchronised; A→C&X possible loop only.
        topo = Topology()
        for name in "ABCX":
            topo.add_device(name)
        out = topo.add_external("out")
        topo.add_link_by_name("A", "B")
        topo.add_link_by_name("A", "C")
        topo.add_link_by_name("C", "X")
        topo.add_link_by_name("X", "B")
        topo.add_link(topo.id_of("C"), out)
        verifier = SubspaceVerifier(topo, LAYOUT, check_loops=True)
        reports = self._feed(verifier, topo, [("B", "A"), ("A", "C")])
        assert all(r.verdict is Verdict.UNKNOWN for r in reports)
        assert verifier.loop_detector.potential_loops > 0

    def test_figure5b_loop_detected_with_unsynced_x(self):
        # Figure 5(b): C synchronised; B→A→X→B... the paper's case is that a
        # loop through the synced part closes regardless of X — here we build
        # the deterministic variant: A→B, B→C, C→A all synced, X dark.
        topo = Topology()
        for name in "ABCX":
            topo.add_device(name)
        topo.add_link_by_name("A", "B")
        topo.add_link_by_name("B", "C")
        topo.add_link_by_name("C", "A")
        topo.add_link_by_name("C", "X")
        verifier = SubspaceVerifier(topo, LAYOUT, check_loops=True)
        reports = self._feed(
            verifier, topo, [("A", "B"), ("B", "C"), ("C", "A")]
        )
        assert reports[-1].verdict is Verdict.VIOLATED

    def test_no_loop_reports_satisfied_when_converged(self):
        topo = line(3)
        sink = topo.add_external("sink")
        topo.add_link(2, sink)
        verifier = SubspaceVerifier(topo, LAYOUT, check_loops=True)
        verifier.receive(0, [insert(0, Rule(1, Match.wildcard(), 1))])
        verifier.receive(1, [insert(1, Rule(1, Match.wildcard(), 2))])
        reports = verifier.receive(2, [insert(2, Rule(1, Match.wildcard(), sink))])
        assert reports[0].verdict is Verdict.SATISFIED

    def test_drop_action_is_loop_free(self):
        topo = ring(3)
        verifier = SubspaceVerifier(topo, LAYOUT, check_loops=True)
        for device in topo.switches():
            reports = verifier.receive(device, [])  # default action DROP
        assert reports[0].verdict is Verdict.SATISFIED

    def test_loop_on_subset_of_header_space(self):
        """A loop for one EC only (prefix-specific loop)."""
        topo = ring(4)
        verifier = SubspaceVerifier(topo, LAYOUT, check_loops=True)
        half = Match.dst_prefix(0b1000, 1, LAYOUT)
        verifier.receive(0, [insert(0, Rule(2, half, 1))])
        reports = verifier.receive(1, [insert(1, Rule(2, half, 0))])
        assert reports[0].verdict is Verdict.VIOLATED

    def test_disjoint_half_spaces_no_loop(self):
        """0→1 for one half, 1→0 for the other: no packet loops."""
        topo = ring(4)
        verifier = SubspaceVerifier(topo, LAYOUT, check_loops=True)
        high = Match.dst_prefix(0b1000, 1, LAYOUT)
        low = Match.dst_prefix(0b0000, 1, LAYOUT)
        verifier.receive(0, [insert(0, Rule(2, high, 1))])
        reports = verifier.receive(1, [insert(1, Rule(2, low, 0))])
        assert reports[0].verdict is Verdict.UNKNOWN  # 2, 3 still dark

    def test_incremental_no_rescan(self):
        topo = ring(4)
        verifier = SubspaceVerifier(topo, LAYOUT, check_loops=True)
        verifier.receive(2, [insert(2, Rule(1, Match.wildcard(), 3))])
        verifier.receive(3, [insert(3, Rule(1, Match.wildcard(), 0))])
        r = verifier.receive(0, [insert(0, Rule(1, Match.wildcard(), 1))])
        assert r[0].verdict is Verdict.UNKNOWN
        r = verifier.receive(1, [insert(1, Rule(1, Match.wildcard(), 2))])
        assert r[0].verdict is Verdict.VIOLATED


class TestRegexVerifierEndToEnd:
    def _figure3_requirement(self, topo, multiplicity=Multiplicity.UNICAST):
        return requirement(
            "waypoint",
            topo,
            LAYOUT,
            Match.wildcard(),
            ["S"],
            "S .* [W|Y] .* D",
            multiplicity,
        )

    def test_satisfied_via_waypoint(self):
        topo = figure3_example()
        req = self._figure3_requirement(topo)
        verifier = SubspaceVerifier(topo, LAYOUT, requirements=[req])
        hops = [("S", "W"), ("W", "C"), ("C", "D")]
        last = None
        for u, v in hops:
            last = verifier.receive(topo.id_of(u), [fwd(topo, u, v)])
        # S→W→C→D satisfies even though A,B,E,Y,D are unsynced... D must be
        # synced too (it is the accepting device but takes no further hop).
        assert last[0].verdict in (Verdict.SATISFIED, Verdict.UNKNOWN)
        last = verifier.receive(topo.id_of("D"), [])
        assert last[0].verdict is Verdict.SATISFIED

    def test_paper_update_sequence_violation(self):
        """Figure 4(b): after Updates 1 and 2 of epoch [1,1,...], the
        requirement is consistently violated before W/Y/C ever report."""
        topo = figure3_example()
        req = self._figure3_requirement(topo)
        verifier = SubspaceVerifier(topo, LAYOUT, requirements=[req])
        # Update 1: S forwards to A (link S-W is down).
        r = verifier.receive(topo.id_of("S"), [fwd(topo, "S", "A")])
        assert r[0].verdict is Verdict.UNKNOWN
        # Update 2: A forwards back to S; B forwards to E (link B-Y down).
        r = verifier.receive(topo.id_of("A"), [fwd(topo, "A", "S")])
        assert r[0].verdict is Verdict.VIOLATED
        # The verdict is final; further updates cannot flip it.
        r = verifier.receive(topo.id_of("B"), [fwd(topo, "B", "E")])
        assert r[0].verdict is Verdict.VIOLATED

    def test_early_violation_when_cut(self):
        topo = figure3_example()
        req = requirement(
            "reach", topo, LAYOUT, Match.wildcard(), ["S"], "S .* D"
        )
        verifier = SubspaceVerifier(topo, LAYOUT, requirements=[req])
        # S drops everything: no path can exist no matter what others do.
        reports = verifier.receive(topo.id_of("S"), [])
        assert reports[0].verdict is Verdict.VIOLATED

    def test_mt_and_dgq_agree(self):
        topo = figure3_example()
        req = self._figure3_requirement(topo)
        results = {}
        for use_dgq in (True, False):
            verifier = SubspaceVerifier(
                topo, LAYOUT, requirements=[req], use_dgq=use_dgq
            )
            r = verifier.receive(topo.id_of("S"), [fwd(topo, "S", "A")])
            r = verifier.receive(topo.id_of("A"), [fwd(topo, "A", "S")])
            results[use_dgq] = r[0].verdict
        assert results[True] == results[False] == Verdict.VIOLATED

    def test_cover_requirement(self):
        topo = figure3_example()
        req = requirement(
            "cover-shortest",
            topo,
            LAYOUT,
            Match.wildcard(),
            ["S"],
            "cover (S W C)",
        )
        verifier = SubspaceVerifier(topo, LAYOUT, requirements=[req])
        # S must forward to W (the only graph successor of S here).
        r = verifier.receive(topo.id_of("S"), [fwd(topo, "S", "A")])
        assert r[0].verdict is Verdict.VIOLATED

    def test_cover_satisfied(self):
        topo = figure3_example()
        req = requirement(
            "cover-shortest", topo, LAYOUT, Match.wildcard(), ["S"],
            "cover (S W C)",
        )
        verifier = SubspaceVerifier(topo, LAYOUT, requirements=[req])
        r = verifier.receive(topo.id_of("S"), [fwd(topo, "S", "W")])
        assert r[0].verdict is Verdict.UNKNOWN
        r = verifier.receive(topo.id_of("W"), [fwd(topo, "W", "C")])
        assert r[0].verdict is Verdict.UNKNOWN
        r = verifier.receive(topo.id_of("C"), [fwd(topo, "C", "D")])
        assert r[0].verdict is Verdict.SATISFIED


class TestDispatcher:
    def _factory(self, topo):
        def make(tag):
            return SubspaceVerifier(topo, LAYOUT, epoch=tag, check_loops=True)

        return make

    def test_creates_verifier_for_active_epoch(self):
        topo = ring(4)
        dispatcher = CE2DDispatcher(self._factory(topo))
        dispatcher.receive(0, "e1", [insert(0, Rule(1, Match.wildcard(), 1))])
        assert dispatcher.verifier_for("e1") is not None

    def test_stale_epoch_dropped(self):
        topo = ring(4)
        dispatcher = CE2DDispatcher(self._factory(topo))
        dispatcher.receive(0, "e1", [])
        dispatcher.receive(0, "e2", [])
        assert dispatcher.verifier_for("e1") is None
        assert dispatcher.verifier_for("e2") is not None

    def test_updates_for_inactive_epoch_queued_not_dispatched(self):
        topo = ring(4)
        dispatcher = CE2DDispatcher(self._factory(topo))
        dispatcher.receive(0, "e2", [])            # device 0 already at e2
        dispatcher.receive(0, "e3", [])            # e2 now inactive
        dispatcher.receive(1, "e2", [])            # stale: queued, dropped
        assert dispatcher.verifier_for("e2") is None
        v3 = dispatcher.verifier_for("e3")
        assert v3.num_synced == 1  # only device 0

    def test_loop_detected_within_epoch(self):
        topo = ring(4)
        dispatcher = CE2DDispatcher(self._factory(topo))
        dispatcher.receive(0, "e1", [insert(0, Rule(1, Match.wildcard(), 1))])
        reports = dispatcher.receive(
            1, "e1", [insert(1, Rule(1, Match.wildcard(), 0))]
        )
        assert any(r.verdict is Verdict.VIOLATED for r in reports)
        assert dispatcher.deterministic_reports()

    def test_two_parallel_epochs(self):
        topo = ring(4)
        dispatcher = CE2DDispatcher(self._factory(topo))
        dispatcher.receive(0, "eA", [insert(0, Rule(1, Match.wildcard(), 1))])
        dispatcher.receive(1, "eB", [insert(1, Rule(1, Match.wildcard(), 2))])
        assert dispatcher.tracker.active_tags() == {"eA", "eB"}
        assert len(dispatcher.active_verifiers()) == 2

    def test_max_live_verifiers_backoff(self):
        topo = ring(4)
        dispatcher = CE2DDispatcher(self._factory(topo), max_live_verifiers=1)
        dispatcher.receive(0, "eA", [])
        dispatcher.receive(1, "eB", [])
        assert len(dispatcher.verifiers) == 1

    def test_requires_epoch_tag(self):
        from repro.errors import DispatchError

        topo = ring(4)
        dispatcher = CE2DDispatcher(self._factory(topo))
        with pytest.raises(DispatchError):
            dispatcher.receive(0, None, [])
