"""Tests for the resilience layer (repro.resilience).

Covers the fault injector (determinism + the per-key order invariant the
self-healing argument rests on), supervised ingestion under all three
quarantine policies, the epoch gate, checkpoint/rollback, the
incremental-to-batch fallback, and the chaos difftest convergence
property on a sample of seeded scenarios.
"""

import random

import pytest

from repro.core.model_manager import ModelWriter
from repro.dataplane.rule import DROP, Rule
from repro.dataplane.update import RuleUpdate, UpdateOp, delete, insert
from repro.errors import (
    DuplicateInsertError,
    InvalidUpdateError,
    ReproError,
    RuleNotFoundError,
    StaleEpochError,
    UnknownDeviceError,
    UnknownRuleDeleteError,
)
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.resilience import (
    FAULT_KINDS,
    FAULT_PROFILES,
    DeadLetterLog,
    EpochGate,
    FaultInjector,
    FaultProfile,
    ModelCheckpoint,
    QuarantinedUpdate,
    QuarantinePolicy,
    UpdateValidator,
    WorkerFaultSpec,
    fault_profile,
    stale_epoch_tag,
)
from repro.telemetry import Telemetry

LAYOUT = dst_only_layout(4)
DEVICES = [0, 1, 2]


def rule(priority, value, length, action):
    return Rule(priority, Match.dst_prefix(value, length, LAYOUT), action)


def sample_stream(epoch="e1"):
    r0 = rule(1, 0x0, 1, 1)
    r1 = rule(1, 0x8, 1, 2)
    r2 = rule(2, 0x4, 2, 2)
    return [
        insert(0, r0, epoch=epoch),
        insert(1, r1, epoch=epoch),
        insert(0, r2, epoch=epoch),
        delete(0, r2, epoch=epoch),
        insert(2, r0, epoch=epoch),
    ]


def random_stream(rng, epoch="e1", ops=30):
    installed = {d: [] for d in DEVICES}
    updates = []
    for _ in range(ops):
        device = rng.choice(DEVICES)
        have = installed[device]
        if have and rng.random() < 0.35:
            victim = rng.choice(have)
            have.remove(victim)
            updates.append(delete(device, victim, epoch=epoch))
        else:
            r = rule(
                rng.randint(0, 3),
                rng.randrange(16),
                rng.randint(0, 4),
                rng.choice([1, 2, DROP]),
            )
            if r in have:
                continue
            have.append(r)
            updates.append(insert(device, r, epoch=epoch))
    return updates


def installed_rules(manager):
    return {
        device: set(table.rules(include_default=False))
        for device, table in manager.snapshot.tables.items()
    }


# ---------------------------------------------------------------------------
# fault profiles + injector
# ---------------------------------------------------------------------------
class TestFaultProfiles:
    def test_named_profiles_cover_every_kind(self):
        covered = set()
        for profile in FAULT_PROFILES.values():
            covered.update(k for k, v in profile.rates().items() if v > 0)
        assert covered == set(FAULT_KINDS)

    def test_unknown_profile_raises(self):
        with pytest.raises(ReproError):
            fault_profile("nope")

    def test_combine_is_ratewise_max(self):
        mixed = FAULT_PROFILES["duplicates"] | FAULT_PROFILES["reorder"]
        assert mixed.duplicate_insert == 0.25
        assert mixed.reorder == 0.35
        assert mixed.phantom_delete == 0.0

    def test_scaled_clamps(self):
        doubled = FAULT_PROFILES["reorder"].scaled(10)
        assert doubled.reorder == 1.0


class TestFaultInjector:
    def test_deterministic(self):
        stream = sample_stream()
        a = FaultInjector(FAULT_PROFILES["mixed"], seed=9)
        b = FaultInjector(FAULT_PROFILES["mixed"], seed=9)
        assert a.inject(stream) == b.inject(stream)
        assert a.fault_counts() == b.fault_counts()

    def test_different_seed_differs(self):
        stream = random_stream(random.Random(0))
        outs = {
            tuple(FaultInjector(FAULT_PROFILES["mixed"], seed=s).inject(stream))
            for s in range(6)
        }
        assert len(outs) > 1

    def test_injects_something_at_high_rates(self):
        profile = FAULT_PROFILES["mixed"].scaled(4, name="hot")
        injector = FaultInjector(profile, seed=1)
        out = injector.inject(random_stream(random.Random(1)))
        counts = injector.fault_counts()
        assert sum(counts.values()) > 0
        assert len(out) > 0

    @pytest.mark.parametrize("profile", sorted(FAULT_PROFILES))
    def test_per_key_order_preserved(self, profile):
        """The invariant the self-healing argument rests on: for every
        (device, rule) key, the subsequence of *clean-stream* operations
        survives in order inside the faulty stream."""
        rng = random.Random(sum(map(ord, profile)))
        clean = random_stream(rng, ops=40)
        injector = FaultInjector(FAULT_PROFILES[profile], seed=5)
        faulty = injector.inject(clean)

        def net_effect(updates):
            state = {}
            for u in updates:
                key = (u.device, u.rule)
                if u.is_insert:
                    state[key] = True
                else:
                    state.pop(key, None)
            return state

        # Applying the faulty stream *without* validation but ignoring
        # phantom keys must land on the clean final state: duplicates and
        # stale copies are idempotent re-applications, reorders commute.
        clean_state = net_effect(clean)
        clean_keys = {(u.device, u.rule) for u in clean}
        faulty_state = {
            k: v
            for k, v in net_effect(faulty).items()
            if k in clean_keys
        }
        assert faulty_state == clean_state

    def test_stale_copies_carry_stale_tag(self):
        profile = FaultProfile("stale", stale_epoch=1.0)
        injector = FaultInjector(profile, seed=2)
        out = injector.inject(sample_stream(epoch="e7"))
        stale = [u for u in out if u.epoch == stale_epoch_tag("e7")]
        assert stale
        assert all(f.kind == "stale_epoch" for f in injector.injected)


# ---------------------------------------------------------------------------
# supervised ingestion
# ---------------------------------------------------------------------------
class TestUpdateValidator:
    def test_strict_raises_structured_errors(self):
        v = UpdateValidator("strict", devices=DEVICES)
        r = rule(1, 0, 1, 1)
        v.admit(insert(0, r))
        with pytest.raises(DuplicateInsertError):
            v.admit(insert(0, r))
        with pytest.raises(UnknownRuleDeleteError):
            v.admit(delete(1, r))
        with pytest.raises(UnknownDeviceError):
            v.admit(insert(99, r))

    def test_unknown_delete_is_still_rule_not_found(self):
        """Back-compat: callers catching RuleNotFoundError keep working."""
        v = UpdateValidator("strict")
        with pytest.raises(RuleNotFoundError):
            v.admit(delete(0, rule(1, 0, 1, 1)))
        assert issubclass(UnknownRuleDeleteError, InvalidUpdateError)

    def test_repair_drops_idempotent_duplicates(self):
        telemetry = Telemetry()
        v = UpdateValidator("repair", devices=DEVICES, telemetry=telemetry)
        r = rule(1, 0, 1, 1)
        survivors = v.admit_all(
            [insert(0, r), insert(0, r), delete(0, r), delete(0, r)]
        )
        assert survivors == [insert(0, r), delete(0, r)]
        assert v.repaired == 2
        assert telemetry.registry.value("resilience.repaired.total") == 2
        assert len(v.dead_letters) == 0

    def test_repair_quarantines_unrepairable(self):
        v = UpdateValidator("repair", devices=DEVICES)
        assert v.admit(insert(99, rule(1, 0, 1, 1))) is None
        assert len(v.dead_letters) == 1
        assert v.dead_letters.entries[0].kind == "unknown_device"

    def test_quarantine_dead_letters_everything_invalid(self):
        telemetry = Telemetry()
        v = UpdateValidator("quarantine", devices=DEVICES, telemetry=telemetry)
        r = rule(1, 0, 1, 1)
        v.admit_all([insert(0, r), insert(0, r), delete(1, r)])
        assert v.admitted == 1
        assert len(v.dead_letters) == 2
        assert v.dead_letters.counts == {
            "duplicate_insert": 1,
            "unknown_delete": 1,
        }
        reg = telemetry.registry
        assert reg.value("resilience.quarantined.total") == 2
        assert reg.value("resilience.quarantined.duplicate_insert") == 1
        assert reg.value("resilience.dead_letter.size") == 2

    def test_dead_letter_log_is_bounded(self):
        log = DeadLetterLog(max_entries=3)
        v = UpdateValidator("quarantine", dead_letters=log)
        for i in range(5):
            v.admit(delete(0, rule(1, i % 16, 4, 1)))
        assert len(log) == 3
        assert log.dropped == 2

    def test_dead_letter_eviction_is_oldest_first(self):
        """The bound evicts in admission order (FIFO), so what survives
        is always the *newest* window; per-kind counts keep tallying
        evicted entries."""
        log = DeadLetterLog(max_entries=3)
        for i in range(5):
            log.record(
                QuarantinedUpdate(
                    update=delete(0, rule(1, i % 16, 4, 1)),
                    kind="unknown_delete",
                    reason=f"r{i}",
                    sequence=i,
                )
            )
        assert [e.sequence for e in log] == [2, 3, 4]
        assert log.dropped == 2
        assert log.counts["unknown_delete"] == 5  # counts survive eviction
        assert len(log.by_kind("unknown_delete")) == 3

    def test_policy_of(self):
        assert QuarantinePolicy.of("repair") is QuarantinePolicy.REPAIR
        assert (
            QuarantinePolicy.of(QuarantinePolicy.STRICT)
            is QuarantinePolicy.STRICT
        )


class TestEpochGate:
    def test_explicit_order_flags_regression(self):
        gate = EpochGate(order=["e0", "e1", "e2"])
        v = UpdateValidator("quarantine", epoch_gate=gate)
        r = rule(1, 0, 1, 1)
        assert v.admit(insert(0, r, ).with_epoch("e1")) is not None
        stale = delete(0, r).with_epoch("e0")
        assert v.admit(stale) is None
        assert v.dead_letters.entries[0].kind == "stale_epoch"

    def test_explicit_order_unknown_tag_is_stale(self):
        gate = EpochGate(order=["e0"])
        assert gate.classify(insert(0, rule(1, 0, 1, 1)).with_epoch("bogus"))

    def test_implicit_mode_flags_superseded_tags(self):
        gate = EpochGate()
        u = insert(0, rule(1, 0, 1, 1))
        assert gate.classify(u.with_epoch("e0")) is None
        assert gate.classify(u.with_epoch("e1")) is None
        assert gate.classify(u.with_epoch("e0")) is not None

    def test_untagged_updates_pass(self):
        gate = EpochGate(order=["e0"])
        assert gate.classify(insert(0, rule(1, 0, 1, 1))) is None

    def test_strict_gate_raises_stale_epoch(self):
        gate = EpochGate(order=["e0", "e1"])
        v = UpdateValidator("strict", epoch_gate=gate)
        v.admit(insert(0, rule(1, 0, 1, 1)).with_epoch("e1"))
        with pytest.raises(StaleEpochError):
            v.admit(insert(0, rule(1, 8, 1, 1)).with_epoch("e0"))


# ---------------------------------------------------------------------------
# supervised ModelWriter: convergence, checkpoint, rollback, fallback
# ---------------------------------------------------------------------------
class TestSupervisedModelWriter:
    @pytest.mark.parametrize("policy", ["repair", "quarantine"])
    def test_faulty_stream_converges(self, policy):
        clean = random_stream(random.Random(3), ops=40)
        injector = FaultInjector(FAULT_PROFILES["mixed"].scaled(2), seed=4)
        faulty = injector.inject(clean)
        assert injector.fault_counts()  # the drill actually injected

        reference = ModelWriter(DEVICES, LAYOUT)
        reference.submit(clean)
        reference.flush()

        gate = EpochGate(order=[stale_epoch_tag("e1"), "e1"])
        supervised = ModelWriter(
            DEVICES, LAYOUT, validation=policy, epoch_gate=gate, recovery=True
        )
        supervised.submit(faulty)
        supervised.flush()

        assert installed_rules(supervised) == installed_rules(reference)
        assert supervised.num_ecs() == reference.num_ecs()

    def test_strict_still_raises_from_flush(self):
        manager = ModelWriter(DEVICES, LAYOUT)
        manager.submit([delete(0, rule(1, 0, 1, 1))])
        with pytest.raises(RuleNotFoundError):
            manager.flush()

    def test_checkpoint_rollback_restores_state(self):
        manager = ModelWriter(DEVICES, LAYOUT, recovery=True)
        r0, r1 = rule(1, 0, 1, 1), rule(1, 8, 1, 2)
        manager.submit([insert(0, r0)])
        manager.flush()
        checkpoint = manager.checkpoint()
        before_rules = installed_rules(manager)
        before_ecs = manager.num_ecs()
        manager.submit([insert(1, r1), delete(0, r0)])
        manager.flush()
        assert installed_rules(manager) != before_rules
        manager.rollback(checkpoint)
        assert installed_rules(manager) == before_rules
        assert manager.num_ecs() == before_ecs
        assert manager.telemetry.registry.value("resilience.rollback.count") == 1

    def test_rollback_after_rollback_double_fault(self):
        """Crash-during-recovery: a second rollback to the same
        checkpoint (as the fleet supervisor issues when a respawned
        worker dies again mid-restore) is idempotent and leaves the
        manager fully usable."""
        manager = ModelWriter(DEVICES, LAYOUT, recovery=True)
        r0, r1, r2 = rule(1, 0, 1, 1), rule(1, 8, 1, 2), rule(2, 4, 2, 2)
        manager.submit([insert(0, r0)])
        manager.flush()
        checkpoint = manager.checkpoint()
        golden_rules = installed_rules(manager)
        golden_ecs = manager.num_ecs()
        # First fault: diverge, roll back.
        manager.submit([insert(1, r1)])
        manager.flush()
        manager.rollback(checkpoint)
        assert installed_rules(manager) == golden_rules
        # Second fault before any new checkpoint: diverge again, roll
        # back to the *same* checkpoint again.
        manager.submit([insert(2, r2), delete(0, r0)])
        manager.flush()
        assert installed_rules(manager) != golden_rules
        manager.rollback(checkpoint)
        assert installed_rules(manager) == golden_rules
        assert manager.num_ecs() == golden_ecs
        reg = manager.telemetry.registry
        assert reg.value("resilience.rollback.count") == 2
        # Not wedged: the restored state keeps applying clean updates
        # identically to a fresh replay of the same history.
        manager.submit([insert(1, r1)])
        manager.flush()
        expected = ModelWriter(DEVICES, LAYOUT)
        expected.submit([insert(0, r0), insert(1, r1)])
        expected.flush()
        assert installed_rules(manager) == installed_rules(expected)
        assert manager.num_ecs() == expected.num_ecs()

    def test_rollback_without_checkpoint_resets(self):
        manager = ModelWriter(DEVICES, LAYOUT)
        manager.submit([insert(0, rule(1, 0, 1, 1))])
        manager.flush()
        manager.rollback()  # no checkpoint ever captured
        assert all(not rules for rules in installed_rules(manager).values())

    def test_fallback_recompute_on_poisoned_block(self):
        """A strict manager with recovery: the pipeline raises mid-block,
        the manager rolls back and batch-recomputes the valid net effect
        instead of propagating or wedging."""
        manager = ModelWriter(DEVICES, LAYOUT, recovery=True)
        r0, r1 = rule(1, 0, 1, 1), rule(1, 8, 1, 2)
        manager.submit([insert(0, r0)])
        manager.flush()
        # Poison: deleting r1 (never installed) makes the pipeline raise.
        manager.submit([insert(1, r1), delete(2, r1)])
        deltas = manager.flush()
        assert deltas  # recovery produced a usable model, not an exception
        reg = manager.telemetry.registry
        assert reg.value("resilience.fallback.count") == 1
        assert reg.value("resilience.fallback.recovered") == 1
        assert reg.value("resilience.fallback.active") == 0
        expected = ModelWriter(DEVICES, LAYOUT)
        expected.submit([insert(0, r0), insert(1, r1)])
        expected.flush()
        assert installed_rules(manager) == installed_rules(expected)
        assert manager.num_ecs() == expected.num_ecs()
        # The manager is not wedged: clean updates keep applying.
        manager.submit([delete(1, r1)])
        manager.flush()
        assert installed_rules(manager)[1] == set()

    def test_checkpoint_capture_and_journal(self):
        manager = ModelWriter(DEVICES, LAYOUT)
        r = rule(1, 0, 1, 1)
        manager.submit([insert(0, r)])
        manager.flush()
        cp = ModelCheckpoint.capture(manager.snapshot)
        assert cp.rule_count() == 1
        assert cp.journal()[0] == [r]
        assert list(cp.insert_updates()) == [insert(0, r)]


# ---------------------------------------------------------------------------
# worker fault specs
# ---------------------------------------------------------------------------
class TestWorkerFaultSpec:
    def test_parse(self):
        spec = WorkerFaultSpec.parse("raise@3")
        assert spec.kind == "raise" and spec.attempts == 3
        assert WorkerFaultSpec.parse("hang").attempts == 1
        with pytest.raises(ValueError):
            WorkerFaultSpec.parse("explode")

    def test_trigger_window(self):
        spec = WorkerFaultSpec.parse("raise@2")
        with pytest.raises(RuntimeError):
            spec.trigger(0)
        with pytest.raises(RuntimeError):
            spec.trigger(1)
        spec.trigger(2)  # outside the window: no-op


# ---------------------------------------------------------------------------
# chaos difftest convergence (the self-healing property)
# ---------------------------------------------------------------------------
@pytest.mark.chaos
@pytest.mark.parametrize("profile", sorted(FAULT_PROFILES))
def test_chaos_convergence_sample(profile):
    """A slice of the CI chaos gate: seeded scenarios through the fault
    injector under repair+quarantine converge to the oracle's verdicts."""
    from repro.difftest import ChaosRunner, ScenarioGenerator

    generator = ScenarioGenerator(seed=2024, profile="smoke")
    runner = ChaosRunner(profile=profile, seed=17)
    for index in range(4):
        result = runner.run(generator.scenario(index))
        assert result.ok, (profile, index, result.divergences)
