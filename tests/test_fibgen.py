"""Tests for the FIB generators and the rule index / subspace helpers."""

import pytest

from repro.core.rule_index import RuleIndex, matches_intersect, patterns_intersect
from repro.core.subspace import SubspacePartition
from repro.dataplane.rule import DROP, Rule, next_hops_of
from repro.dataplane.update import insert
from repro.errors import HeaderSpaceError
from repro.fibgen.addressing import assign_rack_prefixes, rack_destinations
from repro.fibgen.ecmp import std_fib_ecmp
from repro.fibgen.planning import pod_addition_scenario
from repro.fibgen.shortest_path import std_fib
from repro.fibgen.suffix import std_fib_suffix
from repro.headerspace.fields import dst_only_layout, dst_src_layout
from repro.headerspace.match import Match, MatchCompiler, Pattern
from repro.bdd.predicate import PredicateEngine
from repro.network.generators import fabric, fat_tree, line


def small_fabric():
    return fabric(pods=2, tors_per_pod=2, fabrics_per_pod=2, spines_per_plane=1)


class TestAddressing:
    def test_assignment_density(self):
        topo = small_fabric()
        layout = dst_only_layout(8)
        racks = rack_destinations(topo)
        assignments = assign_rack_prefixes(topo, layout, racks)
        assert len(assignments) == 4
        assert all(a.length == 2 for a in assignments)
        values = [a.value for a in assignments]
        assert len(set(values)) == len(values)

    def test_prefix_label_attached(self):
        topo = small_fabric()
        layout = dst_only_layout(8)
        assignments = assign_rack_prefixes(topo, layout, rack_destinations(topo))
        rack = assignments[0].device
        assert topo.device(rack).label("prefixes") == [(assignments[0].value, 2)]

    def test_too_many_destinations(self):
        topo = fabric(pods=3, tors_per_pod=4, fabrics_per_pod=2, spines_per_plane=1)
        with pytest.raises(HeaderSpaceError):
            assign_rack_prefixes(topo, dst_only_layout(3), rack_destinations(topo))


def _walk(topo, fibs, layout, start, dst_values, max_hops=20):
    """Follow FIB next hops from start for the given header values."""
    from repro.dataplane.fib import FibTable

    tables = {}
    for device, rules in fibs.items():
        t = FibTable()
        for r in rules:
            t.insert(r)
        tables[device] = t
    current = start
    for _ in range(max_hops):
        if current not in tables:  # reached an external/rack node
            return current
        action = tables[current].lookup(dst_values)
        hops = next_hops_of(action)
        if not hops:
            return None
        current = hops[0]
    return None


class TestStdFib:
    def test_all_pairs_reach_destination(self):
        topo = small_fabric()
        layout = dst_only_layout(8)
        fibs = std_fib(topo, layout)
        for rack in topo.externals():
            value, length = topo.device(rack).label("prefixes")[0]
            header = {"dst": value}
            for switch in topo.switches():
                arrived = _walk(topo, fibs, layout, switch, header)
                assert arrived == rack, (
                    f"{topo.name_of(switch)} -> dst {value}: got {arrived}"
                )

    def test_rule_counts(self):
        topo = small_fabric()
        fibs = std_fib(topo, dst_only_layout(8))
        # Every switch can reach every one of 4 prefixes.
        assert all(len(rs) == 4 for rs in fibs.values())

    def test_line_topology(self):
        topo = line(3)
        host = topo.add_external("h")
        topo.add_link(2, host)
        fibs = std_fib(topo, dst_only_layout(4))
        assert _walk(topo, fibs, dst_only_layout(4), 0, {"dst": 0}) == host


class TestEcmpFib:
    def test_two_field_rules_present(self):
        topo = small_fabric()
        layout = dst_src_layout(8, 4)
        fibs = std_fib_ecmp(topo, layout, src_buckets=2)
        two_field = [
            r
            for rules in fibs.values()
            for r in rules
            if "src" in r.match.patterns
        ]
        assert two_field, "expected source-match ECMP rules"
        assert all(r.priority == 2 for r in two_field)

    def test_ecmp_spreads_across_hops(self):
        topo = small_fabric()
        layout = dst_src_layout(8, 4)
        fibs = std_fib_ecmp(topo, layout, src_buckets=2)
        # A ToR in pod 0 reaching a pod-1 prefix has 2 fabric uplinks.
        tor = topo.select(role="tor", pod=0)[0]
        spread = [
            r.action
            for r in fibs[tor]
            if "src" in r.match.patterns
        ]
        assert len(set(spread)) > 1

    def test_requires_src_field(self):
        topo = small_fabric()
        with pytest.raises(HeaderSpaceError):
            std_fib_ecmp(topo, dst_only_layout(8))


class TestSuffixFib:
    def test_suffix_rules_are_non_prefix(self):
        topo = small_fabric()
        layout = dst_only_layout(8)
        fibs = std_fib_suffix(topo, layout, suffix_bits=2)
        ternaries = [
            r.match.patterns["dst"].ternaries[0]
            for rules in fibs.values()
            for r in rules
            if r.priority == 2
        ]
        assert ternaries
        # Wildcard gap between prefix and suffix bits: mask is non-contiguous.
        def contiguous(mask):
            if mask == 0:
                return True
            shifted = mask >> ((mask & -mask).bit_length() - 1)
            return (shifted & (shifted + 1)) == 0

        assert any(not contiguous(m) for _, m in ternaries)

    def test_delivery_still_correct(self):
        topo = small_fabric()
        layout = dst_only_layout(8)
        fibs = std_fib_suffix(topo, layout, suffix_bits=1)
        for rack in topo.externals():
            value, length = topo.device(rack).label("prefixes")[0]
            for suffix in (0, 1):
                arrived = _walk(topo, fibs, layout, 0, {"dst": value | suffix})
                assert arrived == rack


class TestPlanning:
    def test_small_pod_addition(self):
        scenario = pod_addition_scenario(k=4, prefixes_per_pod=2, dst_width=10)
        assert scenario.num_updates > 0
        # All updates are insertions of rules for the new pod's prefixes or
        # re-routes; the new FIB is strictly larger.
        assert scenario.total_rules_after > sum(
            len(rs) for rs in scenario.before.values()
        )

    def test_updates_transform_before_into_after(self):
        scenario = pod_addition_scenario(k=4, prefixes_per_pod=1, dst_width=10)
        state = {d: set(rs) for d, rs in scenario.before.items()}
        for u in scenario.updates:
            bucket = state.setdefault(u.device, set())
            if u.is_insert:
                bucket.add(u.rule)
            else:
                bucket.remove(u.rule)
        expected = {d: set(rs) for d, rs in scenario.after.items()}
        for device in expected:
            assert state.get(device, set()) == expected[device]

    def test_scale_grows_with_k(self):
        small = pod_addition_scenario(k=4, prefixes_per_pod=2, dst_width=12)
        large = pod_addition_scenario(k=6, prefixes_per_pod=2, dst_width=12)
        assert large.total_rules_after > small.total_rules_after


LAYOUT = dst_only_layout(8)


def prefix_rule(pri, value, length, action=1):
    return Rule(pri, Match.dst_prefix(value, length, LAYOUT), action)


class TestPatternsIntersect:
    def test_nested_prefixes(self):
        a = Pattern.prefix(0b10000000, 1, 8)
        b = Pattern.prefix(0b10100000, 3, 8)
        assert patterns_intersect(a, b)

    def test_disjoint_prefixes(self):
        a = Pattern.prefix(0b00000000, 1, 8)
        b = Pattern.prefix(0b10000000, 1, 8)
        assert not patterns_intersect(a, b)

    def test_suffix_vs_prefix(self):
        suffix = Pattern.suffix(0b1, 1, 8)
        prefix = Pattern.prefix(0b10000000, 4, 8)
        assert patterns_intersect(suffix, prefix)

    def test_matches_intersect_disjoint_field(self):
        layout = dst_src_layout(4, 4)
        a = Match({"dst": Pattern.prefix(0b0000, 2, 4)})
        b = Match({"dst": Pattern.prefix(0b1000, 2, 4)})
        assert not matches_intersect(a, b)
        c = Match({"src": Pattern.prefix(0b1000, 2, 4)})
        assert matches_intersect(a, c)  # different fields never conflict


class TestRuleIndex:
    def test_add_remove_len(self):
        index = RuleIndex(LAYOUT)
        r = prefix_rule(1, 0x80, 1)
        index.add(r)
        assert len(index) == 1
        index.remove(r)
        assert len(index) == 0

    def test_remove_missing_raises(self):
        index = RuleIndex(LAYOUT)
        with pytest.raises(KeyError):
            index.remove(prefix_rule(1, 0x80, 4))

    def test_overlapping_exact(self):
        index = RuleIndex(LAYOUT)
        inside = prefix_rule(1, 0b10100000, 3)
        outside = prefix_rule(1, 0b01000000, 2)
        coarse = prefix_rule(1, 0b10000000, 1)
        for r in (inside, outside, coarse):
            index.add(r)
        found = index.overlapping(Match.dst_prefix(0b10100000, 4, LAYOUT))
        assert inside in found and coarse in found and outside not in found

    def test_overlapping_matches_bruteforce(self):
        import random

        rng = random.Random(7)
        index = RuleIndex(LAYOUT)
        rules = []
        for i in range(60):
            if rng.random() < 0.7:
                length = rng.randint(0, 8)
                value = rng.randrange(256) & (
                    ((1 << length) - 1) << (8 - length) if length else 0
                )
                match = Match.dst_prefix(value, length, LAYOUT)
            else:
                match = Match(
                    {"dst": Pattern.suffix(rng.randrange(256), rng.randint(0, 4), 8)}
                )
            r = Rule(rng.randint(0, 5), match, i)
            rules.append(r)
            index.add(r)
        for _ in range(30):
            length = rng.randint(0, 8)
            value = rng.randrange(256)
            query = Match.dst_prefix(value, length, LAYOUT)
            expected = {r for r in rules if matches_intersect(query, r.match)}
            assert set(index.overlapping(query)) == expected


class TestSubspacePartition:
    def _partition(self):
        return SubspacePartition.dst_prefix_partition(
            LAYOUT, [(0x00, 2), (0x40, 2), (0x80, 2), (0xC0, 2)]
        )

    def test_exhaustive(self):
        partition = self._partition()
        compiler = MatchCompiler(PredicateEngine(LAYOUT.total_bits), LAYOUT)
        assert partition.check_exhaustive(compiler)

    def test_route_updates(self):
        partition = self._partition()
        u1 = insert(0, prefix_rule(1, 0x00, 2))
        u2 = insert(0, prefix_rule(1, 0x80, 1))  # spans subspaces 2 and 3
        routed = partition.route_updates([u1, u2])
        assert routed[0] == [u1]
        assert routed[1] == []
        assert routed[2] == [u2]
        assert routed[3] == [u2]

    def test_wildcard_goes_everywhere(self):
        partition = self._partition()
        u = insert(0, Rule(1, Match.wildcard(), 1))
        routed = partition.route_updates([u])
        assert all(routed[i] == [u] for i in range(4))

    def test_universe_of(self):
        partition = self._partition()
        compiler = MatchCompiler(PredicateEngine(LAYOUT.total_bits), LAYOUT)
        universe = partition.universe_of(partition.subspaces[0], compiler)
        assert universe.sat_count() == 64
