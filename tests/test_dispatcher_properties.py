"""End-to-end dispatcher properties under randomized multi-epoch arrivals.

Complements test_consistency_properties (single-verifier) by driving the
full Flash dispatcher: devices progress through a chain of epochs with
cumulative FIB diffs, arrival order across devices is random, and some
devices lag behind (long tail).  Properties:

* within one epoch, deterministic verdicts never contradict each other;
* the newest epoch's verdict equals a from-scratch verification of the
  final FIB state;
* stale-epoch verifiers never outlive their epoch.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.results import LoopReport, Verdict
from repro.dataplane.fib import FibSnapshot
from repro.dataplane.rule import DROP, Rule, next_hops_of
from repro.dataplane.update import delete, insert
from repro.flash import Flash
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.topology import Topology

LAYOUT = dst_only_layout(3)


def random_topology(rng):
    n = rng.randint(4, 6)
    topo = Topology()
    for i in range(n):
        topo.add_device(f"s{i}")
    for i in range(1, n):
        topo.add_link(i, rng.randrange(i))
    for _ in range(rng.randint(1, n)):
        u, v = rng.sample(range(n), 2)
        if not topo.has_link(u, v):
            topo.add_link(u, v)
    return topo


def random_rule(topo, device, pri, rng):
    action = rng.choice(sorted(topo.neighbors(device)) + [DROP])
    length = rng.randint(0, 2)
    value = rng.randrange(8)
    if action == DROP:
        return None
    return Rule(pri, Match.dst_prefix(value, length, LAYOUT), action)


def build_epoch_chain(topo, rng, epochs=3):
    """Per device, a chain of cumulative FIB states with diff updates."""
    state = {d: {} for d in topo.switches()}  # device → {pri: rule}
    batches = {d: [] for d in topo.switches()}  # device → [(tag, updates)]
    for e in range(epochs):
        tag = f"e{e}"
        for device in topo.switches():
            updates = []
            # Each epoch, each device re-rolls one priority slot.
            pri = rng.randint(1, 2)
            old = state[device].get(pri)
            new = random_rule(topo, device, pri, rng)
            if old is not None and old != new:
                updates.append(delete(device, old, epoch=tag))
                del state[device][pri]
            if new is not None and new != old:
                updates.append(insert(device, new, epoch=tag))
                state[device][pri] = new
            batches[device].append((tag, updates))
    return batches, state


def brute_force_loop(topo, final_state):
    snapshot = FibSnapshot(topo.switches())
    for device, rules in final_state.items():
        for rule in rules.values():
            snapshot.table(device).insert(rule)
    for header in range(LAYOUT.universe_size):
        values = LAYOUT.unflatten(header)
        for start in topo.switches():
            current, seen = start, set()
            while True:
                if current in seen:
                    return True
                seen.add(current)
                hops = next_hops_of(snapshot.table(current).lookup(values))
                if not hops or hops[0] not in snapshot.tables:
                    break
                current = hops[0]
    return False


class TestDispatcherEndToEnd:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_final_epoch_matches_ground_truth(self, seed):
        rng = random.Random(seed)
        topo = random_topology(rng)
        batches, final_state = build_epoch_chain(topo, rng)
        flash = Flash(topo, LAYOUT, check_loops=True)
        # Random interleaving preserving per-device epoch order.
        pending = {d: list(b) for d, b in batches.items()}
        while any(pending.values()):
            device = rng.choice([d for d, b in pending.items() if b])
            tag, updates = pending[device].pop(0)
            flash.receive(device, tag, updates)
        expected = brute_force_loop(topo, final_state)
        final_reports = [
            r
            for r in flash.dispatcher.reports
            if isinstance(r, LoopReport) and r.epoch == "e2"
        ]
        assert final_reports
        final = final_reports[-1].verdict
        assert final is (Verdict.VIOLATED if expected else Verdict.SATISFIED), seed

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_no_contradictions_within_epoch(self, seed):
        rng = random.Random(seed)
        topo = random_topology(rng)
        batches, _ = build_epoch_chain(topo, rng)
        flash = Flash(topo, LAYOUT, check_loops=True)
        pending = {d: list(b) for d, b in batches.items()}
        while any(pending.values()):
            device = rng.choice([d for d, b in pending.items() if b])
            tag, updates = pending[device].pop(0)
            flash.receive(device, tag, updates)
        per_epoch = {}
        for r in flash.dispatcher.reports:
            if not isinstance(r, LoopReport):
                continue
            per_epoch.setdefault(r.epoch, []).append(r.verdict)
        for epoch, verdicts in per_epoch.items():
            deterministic = {v for v in verdicts if v is not Verdict.UNKNOWN}
            assert len(deterministic) <= 1, (seed, epoch, verdicts)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_stale_verifiers_garbage_collected(self, seed):
        rng = random.Random(seed)
        topo = random_topology(rng)
        batches, _ = build_epoch_chain(topo, rng)
        flash = Flash(topo, LAYOUT, check_loops=True)
        for device, chain in batches.items():
            for tag, updates in chain:
                flash.receive(device, tag, updates)
        # Every device reported e2, so e0/e1 are inactive and dropped.
        assert flash.dispatcher.verifier_for("e0") is None
        assert flash.dispatcher.verifier_for("e1") is None
        assert flash.dispatcher.verifier_for("e2") is not None


class _StubVerifier:
    """Factory-call accounting double with the dispatcher's duck type."""

    def __init__(self, epoch):
        self.epoch = epoch
        self.batches = []

    def receive(self, device, updates, now=None):
        self.batches.append((device, list(updates)))
        return []


class TestEpochStormBackoff:
    """§4.1's guard: a buggy control plane minting epochs faster than they
    converge must not translate into unbounded verifier creation."""

    EPOCHS = 40
    CAP = 4

    def drive_storm(self, dispatcher, devices, epochs=EPOCHS):
        """One leader device races through epochs; the rest lag behind.

        Storm batches are empty diffs — the storm is about epoch-tag
        churn, not FIB content.
        """
        high_water = 0
        for e in range(epochs):
            tag = f"storm-{e}"
            dispatcher.receive(devices[0], tag, [])
            high_water = max(high_water, len(dispatcher.verifiers))
        return high_water

    def test_verifier_creation_stays_bounded(self):
        from repro.ce2d.dispatcher import CE2DDispatcher

        created = []

        def factory(tag):
            verifier = _StubVerifier(tag)
            created.append(tag)
            return verifier

        dispatcher = CE2DDispatcher(factory, max_live_verifiers=self.CAP)
        devices = [0, 1, 2]
        high_water = self.drive_storm(dispatcher, devices)
        # Back-off: live verifiers never exceed the cap, even though the
        # storm minted 10x more epochs than capacity.
        assert high_water <= self.CAP
        assert len(dispatcher.verifiers) <= self.CAP
        assert len(created) <= self.EPOCHS
        live = dispatcher.telemetry.registry.value("ce2d.verifiers.live")
        assert live == len(dispatcher.verifiers) <= self.CAP

    def test_stale_storm_verifiers_dropped_on_convergence(self):
        from repro.ce2d.dispatcher import CE2DDispatcher

        created = []

        def factory(tag):
            created.append(tag)
            return _StubVerifier(tag)

        dispatcher = CE2DDispatcher(factory, max_live_verifiers=self.CAP)
        devices = [0, 1, 2]
        self.drive_storm(dispatcher, devices)
        # The stragglers catch up directly to the storm's final epoch:
        # every earlier storm epoch is provably stale and must be dropped.
        final = f"storm-{self.EPOCHS - 1}"
        for device in devices[1:]:
            dispatcher.receive(device, final, [])
        assert list(dispatcher.verifiers) == [final]
        reg = dispatcher.telemetry.registry
        assert reg.value("ce2d.verifiers.live") == 1
        opened = reg.value("ce2d.epoch.opened")
        closed = reg.value("ce2d.epoch.closed")
        assert opened == len(created)
        assert closed == len(created) - 1
        # The surviving verifier saw every device's (empty) batch.
        survivor = dispatcher.verifiers[final]
        assert {d for d, _ in survivor.batches} == set(devices)
