"""Round-trip and rejection properties of the FBW1 compact wire format.

The blob is the only way predicates cross process boundaries (partitioned
workers) and the bulk path of every difftest model comparison, so both
directions of every engine pairing must preserve function equality, and
corrupt input must fail loudly rather than build a non-canonical BDD.
"""

import struct

import pytest

from repro.bdd.predicate import PredicateEngine
from repro.bdd.reference import ReferenceBDD
from repro.bdd.wire import (
    DELTA_MAGIC,
    MAGIC,
    WireFormatError,
    _DELTA_HEADER,
    delta_base_fingerprint,
    export_blob,
    fingerprint_blob,
    import_blob,
)

from .conftest import case_rng
from .test_bdd_split import NUM_VARS, fresh_engine, random_pred


def _random_batch(engine, rng, n=24):
    return [random_pred(engine, rng, 5) for _ in range(n)]


@pytest.mark.parametrize("src_kind", ["fast", "reference"])
@pytest.mark.parametrize("dst_kind", ["fast", "reference"])
def test_roundtrip_across_engine_pairings(src_kind, dst_kind):
    src = fresh_engine(src_kind)
    dst = fresh_engine(dst_kind)
    probe = fresh_engine("fast")
    rng = case_rng(0xF1B1)
    preds = _random_batch(src, rng)
    blob = src.export_bytes(preds)
    imported = dst.import_bytes(blob)
    assert len(imported) == len(preds)
    # Function equality via a third engine: both transplants must land
    # on the same node there.
    for original, transplanted in zip(preds, imported):
        assert probe.import_predicate(original) == probe.import_predicate(
            transplanted
        )


def test_roundtrip_preserves_terminals_and_duplicates():
    src = fresh_engine("fast")
    dst = fresh_engine("reference")
    rng = case_rng(0xF1B2)
    f = random_pred(src, rng)
    batch = [src.false, src.true, f, f, ~f]
    out = dst.import_bytes(src.export_bytes(batch))
    assert out[0].is_false
    assert out[1].is_true
    assert out[2] == out[3]
    assert out[4] == ~out[2]


def test_blob_is_deterministic_and_compact():
    engine = fresh_engine("fast")
    rng = case_rng(0xF1B3)
    preds = _random_batch(engine, rng)
    blob_a = engine.export_bytes(preds)
    blob_b = engine.export_bytes(preds)
    assert blob_a == blob_b
    # magic + header + 3 u32 arrays + u32 roots: linear in DAG size.
    nodes = engine.shared_node_count(preds)
    assert len(blob_a) == 20 + 12 * nodes + 4 * len(preds)


def test_import_predicates_bulk_matches_per_pred_import():
    src = fresh_engine("reference")
    dst = fresh_engine("fast")
    rng = case_rng(0xF1B4)
    preds = _random_batch(src, rng)
    bulk = dst.import_predicates(preds)
    single = [dst.import_predicate(p) for p in preds]
    assert bulk == single


def test_import_predicates_mixed_sources():
    a = fresh_engine("fast")
    b = fresh_engine("reference")
    dst = fresh_engine("fast")
    rng = case_rng(0xF1B5)
    mixed = [random_pred(a, rng), random_pred(b, rng), a.true, b.false]
    out = dst.import_predicates(mixed)
    assert out[0] == dst.import_predicate(mixed[0])
    assert out[1] == dst.import_predicate(mixed[1])
    assert out[2].is_true
    assert out[3].is_false


class TestRejection:
    def _blob(self):
        engine = fresh_engine("fast")
        rng = case_rng(0xF1B6)
        return engine, engine.export_bytes(_random_batch(engine, rng, 8))

    def test_bad_magic(self):
        engine, blob = self._blob()
        with pytest.raises(WireFormatError):
            engine.import_bytes(b"XXXX" + blob[4:])

    def test_truncated(self):
        engine, blob = self._blob()
        with pytest.raises(WireFormatError):
            engine.import_bytes(blob[: len(blob) - 3])

    def test_wider_blob_rejected_narrower_accepted(self):
        engine, blob = self._blob()
        narrower = PredicateEngine(NUM_VARS - 1)
        with pytest.raises(WireFormatError):
            narrower.import_bytes(blob)
        # The other direction is allowed: variable indices are preserved.
        wider = PredicateEngine(NUM_VARS + 1)
        assert len(wider.import_bytes(blob)) == 8

    def test_variable_out_of_range(self):
        engine, blob = self._blob()
        header = blob[: 4 + struct.calcsize("<HHIII")]
        body = bytearray(blob[len(header):])
        # First node's var field: set beyond num_vars.
        struct.pack_into("<I", body, 0, NUM_VARS + 7)
        with pytest.raises(WireFormatError):
            engine.import_bytes(bytes(header) + bytes(body))

    def test_forward_reference_rejected(self):
        engine = fresh_engine("fast")
        node_count = 1
        payload = struct.pack("<HHIII", 1, 0, NUM_VARS, node_count, 1)
        # One node whose low child points at wire id 2 (doesn't exist yet).
        payload += struct.pack("<I", 0)  # var
        payload += struct.pack("<I", 2 << 1)  # low: forward ref
        payload += struct.pack("<I", 1)  # high: TRUE
        payload += struct.pack("<I", 1 << 1)  # root
        with pytest.raises(WireFormatError):
            engine.import_bytes(MAGIC + payload)

    def test_level_order_violation_rejected(self):
        engine = fresh_engine("fast")
        payload = struct.pack("<HHIII", 1, 0, NUM_VARS, 2, 1)
        vars_ = struct.pack("<II", 3, 3)  # child var == parent var
        lows = struct.pack("<II", 0, 1 << 1)
        highs = struct.pack("<II", 1, 1)
        root = struct.pack("<I", 2 << 1)
        with pytest.raises(WireFormatError):
            engine.import_bytes(MAGIC + payload + vars_ + lows + highs + root)


# ---------------------------------------------------------------------------
# FBW2 delta frames
# ---------------------------------------------------------------------------


def _chain_start(kind="fast", seed=0xF2B0, n=16):
    """A (src, dst, src_preds, dst_preds, frame0, fp0) chained pair."""
    src = fresh_engine(kind)
    dst = fresh_engine(kind)
    rng = case_rng(seed)
    preds = _random_batch(src, rng, n)
    frame = src.export_bytes(preds)
    imported = dst.import_bytes(frame)
    return src, dst, preds, imported, frame, fingerprint_blob(frame), rng


class TestDeltaFrames:
    def test_small_change_ships_as_fbw2_and_roundtrips(self):
        src, dst, preds, base, frame, fp, rng = _chain_start()
        changed = list(preds)
        changed[3] = ~changed[3]
        changed[9] = changed[9] | random_pred(src, rng, 4)
        delta = src.export_delta_bytes(changed, preds, fp)
        assert delta[:4] == DELTA_MAGIC
        assert len(delta) < len(src.export_bytes(changed))
        applied, sources = dst.apply_delta_bytes(delta, base, fp)
        # Unchanged slots ride as KEEPs of the base table.
        keeps = [s for s in sources if s is not None]
        assert len(keeps) >= len(preds) - 2
        for i, s in enumerate(sources):
            if s is not None:
                assert applied[i] == base[s]
        probe = fresh_engine("fast")
        for a, b in zip(changed, applied):
            assert probe.import_predicate(a) == probe.import_predicate(b)

    def test_total_rewrite_falls_back_to_full_fbw1(self):
        src, dst, preds, base, frame, fp, rng = _chain_start()
        rewritten = [random_pred(src, rng, 5) for _ in preds]
        blob = src.export_delta_bytes(rewritten, preds, fp)
        assert blob[:4] == MAGIC  # full frame was no larger: chain reset
        applied, sources = dst.apply_delta_bytes(blob, base, fp)
        assert sources == [None] * len(rewritten)
        probe = fresh_engine("fast")
        for a, b in zip(rewritten, applied):
            assert probe.import_predicate(a) == probe.import_predicate(b)

    def test_identity_delta_is_all_keeps(self):
        src, dst, preds, base, frame, fp, rng = _chain_start()
        delta = src.export_delta_bytes(preds, preds, fp)
        assert delta[:4] == DELTA_MAGIC
        applied, sources = dst.apply_delta_bytes(delta, base, fp)
        assert sources == list(range(len(preds)))
        assert applied == base

    def test_wrong_base_fingerprint_rejected(self):
        src, dst, preds, base, frame, fp, rng = _chain_start()
        changed = list(preds)
        changed[0] = ~changed[0]
        delta = src.export_delta_bytes(changed, preds, fp)
        with pytest.raises(WireFormatError, match="fingerprint"):
            dst.apply_delta_bytes(delta, base, fp ^ 1)

    def test_wrong_base_count_rejected(self):
        src, dst, preds, base, frame, fp, rng = _chain_start()
        delta = src.export_delta_bytes(preds, preds, fp)
        with pytest.raises(WireFormatError, match="base roots"):
            dst.apply_delta_bytes(delta, base[:-1], fp)

    def test_truncated_delta_rejected(self):
        src, dst, preds, base, frame, fp, rng = _chain_start()
        changed = list(preds)
        changed[0] = changed[0] | random_pred(src, rng, 4)
        delta = src.export_delta_bytes(changed, preds, fp)
        for cut in (3, 4 + _DELTA_HEADER.size - 1, len(delta) - 2):
            with pytest.raises(WireFormatError):
                dst.apply_delta_bytes(delta[:cut], base, fp)

    def test_trailing_garbage_rejected(self):
        src, dst, preds, base, frame, fp, rng = _chain_start()
        changed = list(preds)
        changed[0] = changed[0] | random_pred(src, rng, 4)
        delta = src.export_delta_bytes(changed, preds, fp)
        with pytest.raises(WireFormatError, match="length mismatch"):
            dst.apply_delta_bytes(delta + b"\x00\x00\x00\x00", base, fp)

    def test_keep_slot_out_of_range_rejected(self):
        src, dst, preds, base, frame, fp, rng = _chain_start()
        delta = bytearray(src.export_delta_bytes(preds, preds, fp))
        # Last u32 is the final KEEP slot; point it past the base table.
        struct.pack_into("<I", delta, len(delta) - 4, len(preds) << 1)
        with pytest.raises(WireFormatError, match="keeps base root"):
            dst.apply_delta_bytes(bytes(delta), base, fp)

    def test_fingerprint_is_of_bytes_and_deterministic(self):
        src, dst, preds, base, frame, fp, rng = _chain_start()
        assert fingerprint_blob(frame) == fp
        assert fingerprint_blob(frame + b"x") != fp
        count, peeked = delta_base_fingerprint(
            src.export_delta_bytes(preds, preds, fp)
        )
        assert (count, peeked) == (len(preds), fp)
        with pytest.raises(WireFormatError):
            delta_base_fingerprint(frame)  # FBW1 is not a delta

    def test_import_frames_folds_a_mixed_chain(self):
        src, _, preds, _, frame, fp, rng = _chain_start()
        frames = [frame]
        current = list(preds)
        for i in range(3):
            current = list(current)
            current[i] = current[i] | random_pred(src, rng, 4)
            nxt = src.export_delta_bytes(current, preds, fp)
            frames.append(nxt)
            preds, fp = current, fingerprint_blob(nxt)
        # Splice a full-frame reset mid-chain, then one more delta.
        reset = src.export_bytes(current)
        frames.append(reset)
        fp = fingerprint_blob(reset)
        current = list(current)
        current[-1] = ~current[-1]
        frames.append(src.export_delta_bytes(current, preds, fp))
        fresh = fresh_engine("fast")
        folded = fresh.import_frames(frames)
        probe = fresh_engine("fast")
        for a, b in zip(current, folded):
            assert probe.import_predicate(a) == probe.import_predicate(b)

    def test_import_frames_requires_full_first_frame(self):
        src, _, preds, _, frame, fp, rng = _chain_start()
        delta = src.export_delta_bytes(preds, preds, fp)
        fresh = fresh_engine("fast")
        with pytest.raises(WireFormatError, match="must start with"):
            fresh.import_frames([delta, frame])
        assert fresh.import_frames([]) == []

    def test_broken_chain_link_rejected(self):
        src, _, preds, _, frame, fp, rng = _chain_start()
        changed = list(preds)
        changed[0] = changed[0] | random_pred(src, rng, 4)
        d1 = src.export_delta_bytes(changed, preds, fp)
        changed2 = list(changed)
        changed2[1] = ~changed2[1]
        d2 = src.export_delta_bytes(
            changed2, changed, fingerprint_blob(d1)
        )
        fresh = fresh_engine("fast")
        # Dropping d1 breaks d2's base fingerprint: must fail loudly.
        with pytest.raises(WireFormatError):
            fresh.import_frames([frame, d2])
        assert len(fresh.import_frames([frame, d1, d2])) == len(preds)
