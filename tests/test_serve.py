"""Tests for repro.serve: the snapshot-isolated query daemon.

Covers the concurrency contract end to end — pinned readers stay on
their model version while the writer advances, the epoch-keyed cache
can only ever go stale-but-correct, drain under backpressure leaves the
daemon quiescent but still answering — plus the query semantics, the
copy-isolation engine re-host, the snapshot store's retire rules, and
the QueryableVerifier protocol the daemon is generic over.
"""

import threading

import pytest

from repro.ce2d.verifier import SubspaceVerifier
from repro.core.model_manager import ModelWriter
from repro.dataplane.rule import Rule
from repro.dataplane.update import delete, insert
from repro.errors import (
    ServeClosedError,
    ServeSaturatedError,
    SnapshotUnavailableError,
)
from repro.flash import EpochGroupVerifier, Flash, QueryableVerifier
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.generators import line
from repro.network.topology import Topology
from repro.serve import (
    BatchOracle,
    LoopQuery,
    QueryAnswer,
    ReachabilityQuery,
    ResultCache,
    ServeDaemon,
    SnapshotStore,
    WaypointQuery,
    build_workload,
    isolate_view,
    reaches_external_avoiding,
    run_load,
)

LAYOUT = dst_only_layout(8)
SPACE = 1 << 8


def diamond():
    """S fans out to W (the waypoint) and B (the bypass), both exit to X."""
    topo = Topology("diamond")
    s = topo.add_device("S")
    w = topo.add_device("W")
    b = topo.add_device("B")
    x = topo.add_external("X")
    topo.add_link(s, w)
    topo.add_link(s, b)
    topo.add_link(w, x)
    topo.add_link(b, x)
    return topo, s, w, b, x


def view_of(topo, batches, validation="repair"):
    """A read view after replaying ``batches`` through a plain writer."""
    writer = ModelWriter(topo.switches(), LAYOUT, validation=validation)
    for batch in batches:
        writer.submit(batch)
        writer.flush()
    return writer.read_view()


def exit_rules(topo, s, w, b, x):
    """Full delivery through the waypoint: S→W→X, B→X."""
    return [
        insert(s, Rule(1, Match.wildcard(), w)),
        insert(w, Rule(1, Match.wildcard(), x)),
        insert(b, Rule(1, Match.wildcard(), x)),
    ]


# ----------------------------------------------------------------------
# The QueryableVerifier protocol (satellite: one receive facade)
# ----------------------------------------------------------------------

class TestQueryableVerifier:
    def test_flash_conforms(self):
        topo, *_ = diamond()
        assert isinstance(Flash(topo, LAYOUT), QueryableVerifier)

    def test_subspace_verifier_conforms(self):
        topo, *_ = diamond()
        verifier = SubspaceVerifier(topo, LAYOUT, epoch="e")
        assert isinstance(verifier, QueryableVerifier)

    def test_epoch_group_verifier_conforms(self):
        topo, *_ = diamond()
        group = EpochGroupVerifier(
            topo, LAYOUT, None, (), check_loops=False, use_dgq=True
        )
        assert isinstance(group, QueryableVerifier)

    def test_arbitrary_object_does_not_conform(self):
        assert not isinstance(object(), QueryableVerifier)

    def test_ingest_then_read_view_sees_the_model(self):
        topo, s, w, b, x = diamond()
        flash = Flash(topo, LAYOUT, check_loops=False, validation="repair")
        flash.ingest(s, [insert(s, Rule(1, Match.wildcard(), w))])
        view = flash.read_view()
        assert view.num_ecs() >= 1


# ----------------------------------------------------------------------
# Query semantics against hand-built views
# ----------------------------------------------------------------------

class TestQueries:
    def test_reachability_holds_on_full_path(self):
        topo, s, w, b, x = diamond()
        view = view_of(topo, [exit_rules(topo, s, w, b, x)])
        answer = ReachabilityQuery(s).evaluate(view, topo)
        assert answer == QueryAnswer(holds=True, headers=SPACE)

    def test_reachability_fails_on_empty_model(self):
        topo, s, *_ = diamond()
        view = view_of(topo, [])
        answer = ReachabilityQuery(s).evaluate(view, topo)
        assert answer == QueryAnswer(holds=False, headers=0)

    def test_scoped_reachability_counts_only_the_scope(self):
        topo, s, w, b, x = diamond()
        view = view_of(topo, [exit_rules(topo, s, w, b, x)])
        scope = Match.dst_prefix(0, 1, LAYOUT)  # half the space
        answer = ReachabilityQuery(s, scope).evaluate(view, topo)
        assert answer == QueryAnswer(holds=True, headers=SPACE // 2)

    def test_loop_detected_with_exact_measure(self):
        topo = line(2)
        half = Match.dst_prefix(0, 1, LAYOUT)
        batch = [
            insert(0, Rule(1, half, 1)),
            insert(1, Rule(1, half, 0)),
        ]
        view = view_of(topo, [batch])
        answer = LoopQuery().evaluate(view, topo)
        assert answer == QueryAnswer(holds=False, headers=SPACE // 2)
        # Scoped to the other half, the loop is out of scope.
        other = Match.dst_prefix(1 << 7, 1, LAYOUT)
        assert LoopQuery(other).evaluate(view, topo) == QueryAnswer(
            holds=True, headers=0
        )

    def test_waypoint_holds_then_bypass_breaks_it(self):
        topo, s, w, b, x = diamond()
        through = exit_rules(topo, s, w, b, x)
        view = view_of(topo, [through])
        assert WaypointQuery(s, w).evaluate(view, topo) == QueryAnswer(
            holds=True, headers=0
        )
        # Re-route half the space around the waypoint.
        bypass = insert(s, Rule(10, Match.dst_prefix(0, 1, LAYOUT), b))
        view = view_of(topo, [through, [bypass]])
        answer = WaypointQuery(s, w).evaluate(view, topo)
        assert answer == QueryAnswer(holds=False, headers=SPACE // 2)

    def test_avoiding_walk_from_the_waypoint_itself(self):
        # A walk starting at the waypoint trivially traverses it, no
        # matter what the FIB says (action_of is never consulted).
        topo, s, w, b, x = diamond()
        assert not reaches_external_avoiding(topo, lambda d: None, w, w)

    def test_cache_key_is_stable_and_scope_sensitive(self):
        topo, s, w, b, x = diamond()
        view = view_of(topo, [exit_rules(topo, s, w, b, x)])
        q1 = ReachabilityQuery(s, Match.dst_prefix(0, 2, LAYOUT))
        q2 = ReachabilityQuery(s, Match.dst_prefix(1 << 6, 2, LAYOUT))
        assert q1.cache_key(view) == q1.cache_key(view)
        assert q1.cache_key(view) != q2.cache_key(view)
        assert q1.cache_key(view) != LoopQuery(q1.scope).cache_key(view)


# ----------------------------------------------------------------------
# Copy isolation: the re-hosted view answers identically
# ----------------------------------------------------------------------

class TestIsolateView:
    def test_isolated_view_answers_equal_originals(self):
        topo, s, w, b, x = diamond()
        view = view_of(topo, [exit_rules(topo, s, w, b, x)])
        isolated = isolate_view(view)
        assert isolated.engine is not view.engine
        for query in (
            ReachabilityQuery(s),
            ReachabilityQuery(s, Match.dst_prefix(3, 3, LAYOUT)),
            LoopQuery(),
            WaypointQuery(s, w),
        ):
            assert query.evaluate(isolated, topo) == query.evaluate(view, topo)

    def test_isolated_universe_measure_preserved(self):
        topo, s, w, b, x = diamond()
        view = view_of(topo, [exit_rules(topo, s, w, b, x)])
        isolated = isolate_view(view)
        assert isolated.universe.sat_count() == view.universe.sat_count()
        assert isolated.num_ecs() == view.num_ecs()


# ----------------------------------------------------------------------
# SnapshotStore: publish / pin / retire
# ----------------------------------------------------------------------

class TestSnapshotStore:
    def _view(self):
        topo, s, w, b, x = diamond()
        return view_of(topo, [])

    def test_epochs_must_increase(self):
        store = SnapshotStore(keep=2)
        view = self._view()
        store.publish(0, view)
        store.publish(1, view)
        with pytest.raises(ValueError):
            store.publish(1, view)
        with pytest.raises(ValueError):
            store.publish(0, view)

    def test_pin_latest_and_explicit(self):
        store = SnapshotStore(keep=4)
        view = self._view()
        store.publish(0, view)
        store.publish(1, view)
        assert store.pin().epoch == 1
        assert store.pin(0).epoch == 0
        with pytest.raises(SnapshotUnavailableError):
            store.pin(7)

    def test_empty_store_pin_raises(self):
        with pytest.raises(SnapshotUnavailableError):
            SnapshotStore().pin()

    def test_retire_keeps_newest_unpinned(self):
        store = SnapshotStore(keep=2)
        view = self._view()
        for epoch in range(5):
            store.publish(epoch, view)
        assert store.live_epochs() == [3, 4]
        assert store.latest_epoch == 4

    def test_pinned_snapshot_survives_retirement(self):
        store = SnapshotStore(keep=1)
        view = self._view()
        store.publish(0, view)
        pinned = store.pin(0)
        for epoch in range(1, 4):
            store.publish(epoch, view)
        # Epoch 0 outlived the keep bound because a reader holds it.
        assert 0 in store.live_epochs()
        pinned.unpin()
        assert store.live_epochs() == [3]

    def test_context_manager_unpins(self):
        store = SnapshotStore(keep=1)
        store.publish(0, self._view())
        with store.pin(0) as snapshot:
            assert snapshot.pins == 1
        assert snapshot.pins == 0


# ----------------------------------------------------------------------
# ResultCache: epoch-keyed LRU
# ----------------------------------------------------------------------

class TestResultCache:
    KEY0 = (0, "reach", (1,), 123, 45)
    KEY1 = (1, "reach", (1,), 123, 45)

    def test_hit_miss_accounting(self):
        cache = ResultCache(8)
        assert cache.get(self.KEY0) is None
        cache.put(self.KEY0, QueryAnswer(True, 7))
        assert cache.get(self.KEY0) == QueryAnswer(True, 7)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_evict_below_sweeps_old_epochs_only(self):
        cache = ResultCache(8)
        cache.put(self.KEY0, QueryAnswer(True, 1))
        cache.put(self.KEY1, QueryAnswer(False, 2))
        assert cache.evict_below(1) == 1
        assert cache.get(self.KEY0) is None
        assert cache.get(self.KEY1) == QueryAnswer(False, 2)

    def test_lru_bound(self):
        cache = ResultCache(2)
        for i in range(4):
            cache.put((0, "reach", (i,), 0, i), QueryAnswer(True, i))
        assert len(cache) == 2
        assert cache.evictions == 2
        # The oldest entries went first.
        assert cache.get((0, "reach", (0,), 0, 0)) is None
        assert cache.get((0, "reach", (3,), 0, 3)) is not None


# ----------------------------------------------------------------------
# The daemon: lifecycle, isolation, backpressure, drain
# ----------------------------------------------------------------------

class TestServeDaemon:
    def _daemon(self, **kwargs):
        topo, s, w, b, x = diamond()
        kwargs.setdefault("validation", "repair")
        return ServeDaemon(topo, LAYOUT, **kwargs), (topo, s, w, b, x)

    def test_rejects_non_queryable_verifier(self):
        topo, *_ = diamond()
        with pytest.raises(TypeError):
            ServeDaemon(topo, LAYOUT, verifier=object())

    def test_rejects_unknown_isolation(self):
        topo, *_ = diamond()
        with pytest.raises(ValueError):
            ServeDaemon(topo, LAYOUT, isolation="mvcc")

    def test_queries_before_start_raise(self):
        daemon, (topo, s, *_ ) = self._daemon()
        with pytest.raises(ServeClosedError):
            daemon.submit_query(ReachabilityQuery(s))
        with pytest.raises(ServeClosedError):
            daemon.submit_updates([])

    def test_epoch_zero_is_the_empty_model(self):
        daemon, (topo, s, *_rest) = self._daemon()
        with daemon:
            assert daemon.epoch == 0
            result = daemon.ask(ReachabilityQuery(s))
            assert result.epoch == 0
            assert result.answer == QueryAnswer(holds=False, headers=0)

    @pytest.mark.parametrize("isolation", ["copy", "copy-delta", "shared"])
    def test_epoch_advances_per_batch(self, isolation):
        daemon, (topo, s, w, b, x) = self._daemon(isolation=isolation)
        with daemon:
            daemon.submit_updates(exit_rules(topo, s, w, b, x), timeout=10.0)
            daemon.drain()
            assert daemon.epoch == 1
            result = daemon.ask(ReachabilityQuery(s))
            assert result.epoch == 1
            assert result.answer == QueryAnswer(holds=True, headers=SPACE)

    @pytest.mark.parametrize("isolation", ["copy", "copy-delta", "shared"])
    def test_pinned_reader_is_stable_while_writer_advances(self, isolation):
        daemon, (topo, s, w, b, x) = self._daemon(
            isolation=isolation, keep_snapshots=8
        )
        base = exit_rules(topo, s, w, b, x)
        churn = [insert(s, Rule(10, Match.dst_prefix(0, 1, LAYOUT), b))]
        with daemon:
            daemon.submit_updates(base, timeout=10.0)
            daemon.drain()
            before = daemon.ask(WaypointQuery(s, w), epoch=1)
            assert before.answer == QueryAnswer(holds=True, headers=0)

            # Advance the writer: half the space now bypasses W.
            daemon._draining = False  # drain() only stops intake
            daemon.submit_updates(churn, timeout=10.0)
            daemon.drain()
            assert daemon.epoch == 2

            # A reader pinned at epoch 1 still sees the old model...
            pinned = daemon.ask(WaypointQuery(s, w), epoch=1)
            assert pinned.answer == QueryAnswer(holds=True, headers=0)
            # ...while the latest snapshot has the violation.
            latest = daemon.ask(WaypointQuery(s, w))
            assert latest.epoch == 2
            assert latest.answer == QueryAnswer(
                holds=False, headers=SPACE // 2
            )

    def test_answers_match_batch_oracle_at_each_epoch(self):
        daemon, (topo, s, w, b, x) = self._daemon(keep_snapshots=8)
        base = exit_rules(topo, s, w, b, x)
        churn = [insert(s, Rule(10, Match.dst_prefix(0, 1, LAYOUT), b))]
        with daemon:
            for batch in (base, churn):
                daemon._draining = False
                daemon.submit_updates(batch, timeout=10.0)
                daemon.drain()
            oracle = BatchOracle(topo, LAYOUT, [base, churn])
            query = WaypointQuery(s, w)
            for epoch in (1, 2):
                served = daemon.ask(query, epoch=epoch)
                expected = query.evaluate(oracle.view_at(epoch), topo)
                assert served.answer == expected

    def test_repeat_query_hits_the_cache_until_epoch_advances(self):
        daemon, (topo, s, w, b, x) = self._daemon()
        query = ReachabilityQuery(s)
        with daemon:
            daemon.submit_updates(exit_rules(topo, s, w, b, x), timeout=10.0)
            daemon.drain()
            first = daemon.ask(query)
            again = daemon.ask(query)
            assert not first.cached and again.cached
            assert first.answer == again.answer

            daemon._draining = False
            daemon.submit_updates(
                [insert(s, Rule(10, Match.dst_prefix(0, 1, LAYOUT), b))],
                timeout=10.0,
            )
            daemon.drain()
            fresh = daemon.ask(query)
            # New epoch, new key: the cache cannot serve a stale answer.
            assert fresh.epoch == 2 and not fresh.cached

    def test_cache_entries_follow_retired_snapshots_out(self):
        daemon, (topo, s, w, b, x) = self._daemon(keep_snapshots=1)
        with daemon:
            daemon.ask(ReachabilityQuery(s))  # cached at epoch 0
            assert len(daemon.cache) == 1
            daemon.submit_updates(exit_rules(topo, s, w, b, x), timeout=10.0)
            daemon.drain()
            daemon.ask(ReachabilityQuery(s))
            # Epoch 0 was retired (keep=1), so its cache entry is swept.
            assert all(key[0] >= 1 for key in daemon.cache._entries)
            with pytest.raises(SnapshotUnavailableError):
                daemon.ask(ReachabilityQuery(s), epoch=0)

    def test_backpressure_saturates_then_drains(self):
        daemon, (topo, s, w, b, x) = self._daemon(queue_size=1)
        batch = exit_rules(topo, s, w, b, x)
        with daemon:
            # Hold the model lock so the writer blocks mid-apply; the
            # queue then fills deterministically.
            with daemon._model_lock:
                daemon.submit_updates(batch)  # writer grabs it, blocks
                deadline = 50
                while daemon.queue_depth > 0 and deadline:
                    threading.Event().wait(0.01)
                    deadline -= 1
                daemon.submit_updates(batch)  # sits in the queue
                with pytest.raises(ServeSaturatedError):
                    daemon.submit_updates(batch)
            daemon.drain()
            assert daemon.epoch == 2
            assert daemon.queue_depth == 0
            # Drain shut intake but queries still flow.
            with pytest.raises(ServeClosedError):
                daemon.submit_updates(batch)
            assert daemon.ask(ReachabilityQuery(s)).answer.holds

    def test_poisoned_batch_is_contained(self):
        daemon, (topo, s, w, b, x) = self._daemon(validation="strict")
        phantom = Rule(5, Match.wildcard(), w)
        with daemon:
            daemon.submit_updates([delete(s, phantom)], timeout=10.0)
            daemon.drain()
            assert len(daemon.failures) == 1
            assert daemon.failures[0].updates == 1
            # The writer survived and the model did not advance.
            assert daemon.epoch == 0
            assert daemon.stats()["ingest_failures"] == 1

    def test_close_is_idempotent_and_final(self):
        daemon, (topo, s, *_rest) = self._daemon()
        daemon.start()
        daemon.close()
        daemon.close()
        with pytest.raises(ServeClosedError):
            daemon.submit_query(ReachabilityQuery(s))
        with pytest.raises(ServeClosedError):
            daemon.start()


# ----------------------------------------------------------------------
# Mid-storm consistency: the load harness's oracle check
# ----------------------------------------------------------------------

class TestMidStormOracle:
    @pytest.mark.parametrize("isolation", ["copy", "copy-delta", "shared"])
    def test_concurrent_answers_equal_the_batch_oracle(self, isolation):
        workload = build_workload(seed=11, quick=True)
        workload.blocks = workload.blocks[:4]
        workload.clients = 2
        workload.queries_per_client = 8
        result = run_load(
            workload, seed=11, isolation=isolation, workers=2, queue_size=2
        )
        assert result.divergences == []
        assert result.ingest_failures == 0
        assert result.queries == 16
        assert result.final_epoch == len(workload.blocks) + 1
        assert result.ok


# ----------------------------------------------------------------------
# The deprecated writer alias is gone after its grace period
# ----------------------------------------------------------------------

class TestQueryDeadline:
    def test_overrunning_query_times_out_and_is_counted(self):
        from repro.errors import QueryTimeoutError
        from repro.telemetry import Telemetry

        topo, s, w, b, x = diamond()
        telemetry = Telemetry()
        with ServeDaemon(
            topo, LAYOUT, query_deadline=1e-9, telemetry=telemetry
        ) as daemon:
            daemon.submit_updates(exit_rules(topo, s, w, b, x), timeout=5.0)
            daemon.drain()
            with pytest.raises(QueryTimeoutError):
                daemon.ask(ReachabilityQuery(s))
            assert telemetry.registry.value("serve.query.timeouts") == 1
            # A timed-out evaluation must not poison the cache: nothing
            # was stored for that key.
            assert len(daemon.cache) == 0

    def test_generous_deadline_does_not_interfere(self):
        topo, s, w, b, x = diamond()
        with ServeDaemon(topo, LAYOUT, query_deadline=30.0) as daemon:
            daemon.submit_updates(exit_rules(topo, s, w, b, x), timeout=5.0)
            daemon.drain()
            result = daemon.ask(ReachabilityQuery(s))
            assert result.answer == QueryAnswer(holds=True, headers=SPACE)

    def test_non_positive_deadline_rejected(self):
        topo, *_ = diamond()
        with pytest.raises(ValueError):
            ServeDaemon(topo, LAYOUT, query_deadline=0.0)


class TestSignalShutdown:
    def test_sigterm_drains_and_closes_the_daemon(self):
        import signal

        from repro.serve import install_signal_handlers

        topo, s, w, b, x = diamond()
        daemon = ServeDaemon(topo, LAYOUT).start()
        previous = install_signal_handlers(
            daemon, signals=(signal.SIGTERM, signal.SIGINT)
        )
        try:
            daemon.submit_updates(exit_rules(topo, s, w, b, x), timeout=5.0)
            with pytest.raises(SystemExit) as excinfo:
                signal.raise_signal(signal.SIGTERM)
            assert excinfo.value.code == 128 + signal.SIGTERM
            # Closed means: queued work applied, no new intake, workers
            # stopped — not a mid-batch teardown.
            assert daemon.epoch == 1  # the one batch was fully applied
            with pytest.raises(ServeClosedError):
                daemon.submit_updates([], timeout=0.1)
            assert (
                daemon.telemetry.registry.value("serve.signal.shutdowns") == 1
            )
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            daemon.close()

    def test_sigint_converts_to_keyboard_interrupt(self):
        import signal

        from repro.serve import install_signal_handlers

        topo, *_ = diamond()
        daemon = ServeDaemon(topo, LAYOUT).start()
        previous = install_signal_handlers(daemon, signals=(signal.SIGINT,))
        try:
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGINT)
            with pytest.raises(ServeClosedError):
                daemon.submit_query(LoopQuery())
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            daemon.close()

    def test_run_load_tolerates_mid_run_close(self):
        """A daemon closed under the load harness (the signal path) ends
        the run gracefully: threads stop at ServeClosedError and the
        oracle check covers what was answered."""
        workload = build_workload(seed=5, quick=True)
        workload.blocks = workload.blocks[:2]
        workload.clients = 1
        workload.queries_per_client = 4

        def close_early(daemon):
            threading.Timer(0.05, daemon.close).start()

        result = run_load(
            workload, seed=5, workers=2, queue_size=2, on_start=close_early
        )
        assert result.divergences == []


class TestModelManagerAlias:
    def test_model_manager_alias_removed(self):
        import repro
        import repro.core
        import repro.core.model_manager as mm
        assert not hasattr(mm, "ModelManager")
        assert not hasattr(repro.core, "ModelManager")
        assert not hasattr(repro, "ModelManager")
        assert "ModelManager" not in repro.core.__all__
        assert "ModelManager" not in repro.__all__
