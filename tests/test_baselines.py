"""Tests for Delta-net* and APKeep* — including cross-verifier agreement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.apkeep import APKeepVerifier
from repro.baselines.deltanet import DeltaNetVerifier
from repro.core.model_manager import ModelWriter
from repro.dataplane.rule import DROP, Rule
from repro.dataplane.update import delete, insert
from repro.errors import DataPlaneError, RuleNotFoundError
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match, Pattern

LAYOUT = dst_only_layout(4)
DEVICES = [0, 1]


def prefix_rule(pri, value, length, action=1):
    return Rule(pri, Match.dst_prefix(value, length, LAYOUT), action)


def suffix_rule(pri, value, length, action=1):
    return Rule(pri, Match({"dst": Pattern.suffix(value, length, 4)}), action)


@st.composite
def unique_priority_blocks(draw):
    """Insert sequences with unique priorities per device (well-behaved)."""
    count = draw(st.integers(0, 10))
    updates = []
    used = {d: set() for d in DEVICES}
    for i in range(count):
        device = draw(st.integers(0, len(DEVICES) - 1))
        priority = draw(st.integers(0, 30))
        if priority in used[device]:
            continue
        used[device].add(priority)
        if draw(st.booleans()):
            length = draw(st.integers(0, 4))
            value = draw(st.integers(0, 15))
            match = Match.dst_prefix(value, length, LAYOUT)
        else:
            match = Match(
                {"dst": Pattern.suffix(draw(st.integers(0, 15)),
                                       draw(st.integers(0, 4)), 4)}
            )
        action = draw(st.sampled_from([1, 2, 3, DROP]))
        updates.append(insert(device, Rule(priority, match, action)))
    return updates


def flash_behavior(manager, values):
    assignment = {}
    for name in LAYOUT.field_names():
        assignment.update(dict(LAYOUT.bits_of(name, values[name])))
    return manager.model.behavior(assignment)


def apkeep_behavior(verifier, values):
    assignment = {}
    for name in LAYOUT.field_names():
        assignment.update(dict(LAYOUT.bits_of(name, values[name])))
    return verifier.behavior(assignment)


class TestDeltaNet:
    def test_empty_behavior(self):
        v = DeltaNetVerifier(DEVICES, LAYOUT)
        assert v.behavior({"dst": 5}) == {0: DROP, 1: DROP}
        assert v.num_atoms == 1

    def test_insert_prefix_splits_atoms(self):
        v = DeltaNetVerifier(DEVICES, LAYOUT)
        v.apply(insert(0, prefix_rule(1, 0b1000, 1, 7)))
        assert v.num_atoms == 2
        assert v.behavior({"dst": 0b1010})[0] == 7
        assert v.behavior({"dst": 0b0010})[0] == DROP

    def test_priority_resolution(self):
        v = DeltaNetVerifier(DEVICES, LAYOUT)
        v.apply(insert(0, prefix_rule(1, 0, 0, 1)))
        v.apply(insert(0, prefix_rule(2, 0b1000, 1, 2)))
        assert v.behavior({"dst": 0b1000})[0] == 2
        assert v.behavior({"dst": 0b0000})[0] == 1

    def test_delete_restores(self):
        v = DeltaNetVerifier(DEVICES, LAYOUT)
        r = prefix_rule(2, 0b1000, 1, 2)
        v.apply(insert(0, prefix_rule(1, 0, 0, 1)))
        v.apply(insert(0, r))
        v.apply(delete(0, r))
        assert v.behavior({"dst": 0b1000})[0] == 1

    def test_suffix_rule_explodes_atoms(self):
        v = DeltaNetVerifier(DEVICES, LAYOUT)
        v.apply(insert(0, suffix_rule(1, 0b1, 1, 9)))
        # 8 disjoint singleton intervals → many atoms.
        assert v.num_atoms >= 8
        assert v.behavior({"dst": 0b0001})[0] == 9
        assert v.behavior({"dst": 0b0010})[0] == DROP

    def test_atom_ops_counted(self):
        v = DeltaNetVerifier(DEVICES, LAYOUT)
        v.apply(insert(0, prefix_rule(1, 0, 0, 1)))
        ops_prefix = v.metrics.extra.get("atom_ops", 0)
        v.apply(insert(0, suffix_rule(2, 0b1, 1, 2)))
        ops_suffix = v.metrics.extra["atom_ops"] - ops_prefix
        assert ops_suffix > ops_prefix  # non-prefix rules cost more

    def test_duplicate_insert_rejected(self):
        v = DeltaNetVerifier(DEVICES, LAYOUT)
        r = prefix_rule(1, 0, 0, 1)
        v.apply(insert(0, r))
        with pytest.raises(DataPlaneError):
            v.apply(insert(0, r))

    def test_delete_missing_raises(self):
        v = DeltaNetVerifier(DEVICES, LAYOUT)
        with pytest.raises(RuleNotFoundError):
            v.apply(delete(0, prefix_rule(1, 0, 0, 1)))

    def test_unknown_device(self):
        v = DeltaNetVerifier(DEVICES, LAYOUT)
        with pytest.raises(DataPlaneError):
            v.apply(insert(9, prefix_rule(1, 0, 0, 1)))

    def test_num_ecs(self):
        v = DeltaNetVerifier(DEVICES, LAYOUT)
        v.apply(insert(0, prefix_rule(1, 0b1000, 1, 7)))
        assert v.num_ecs() == 2


class TestAPKeep:
    def test_empty_model(self):
        v = APKeepVerifier(DEVICES, LAYOUT)
        assert v.num_ecs() == 1
        v.check_invariants()

    def test_insert_and_lookup(self):
        v = APKeepVerifier(DEVICES, LAYOUT)
        v.apply(insert(0, prefix_rule(2, 0b1000, 1, 7)))
        assert v.num_ecs() == 2
        v.check_invariants()
        assert apkeep_behavior(v, {"dst": 0b1000})[0] == 7
        assert apkeep_behavior(v, {"dst": 0b0000})[0] == DROP

    def test_shadowed_insert_is_noop(self):
        v = APKeepVerifier(DEVICES, LAYOUT)
        v.apply(insert(0, prefix_rule(3, 0b1000, 1, 7)))
        v.apply(insert(0, prefix_rule(1, 0b1000, 1, 9)))  # fully shadowed
        assert v.num_ecs() == 2
        assert apkeep_behavior(v, {"dst": 0b1000})[0] == 7

    def test_delete_reowns_to_lower_rule(self):
        v = APKeepVerifier(DEVICES, LAYOUT)
        low = prefix_rule(1, 0, 0, 1)
        high = prefix_rule(2, 0b1000, 1, 2)
        v.apply(insert(0, low))
        v.apply(insert(0, high))
        v.apply(delete(0, high))
        v.check_invariants()
        assert apkeep_behavior(v, {"dst": 0b1000})[0] == 1

    def test_ec_merging_on_same_action(self):
        v = APKeepVerifier(DEVICES, LAYOUT)
        v.apply(insert(0, prefix_rule(1, 0b0000, 1, 5)))
        v.apply(insert(0, prefix_rule(1, 0b1000, 1, 5)))
        # Both halves behave identically → one EC again.
        assert v.num_ecs() == 1

    def test_unknown_device(self):
        v = APKeepVerifier(DEVICES, LAYOUT)
        with pytest.raises(DataPlaneError):
            v.apply(insert(9, prefix_rule(1, 0, 0, 1)))


class TestCrossVerifierAgreement:
    """Flash, APKeep* and Delta-net* must agree on every header."""

    @given(unique_priority_blocks())
    @settings(max_examples=30, deadline=None)
    def test_inserts_agree(self, updates):
        flash = ModelWriter(DEVICES, LAYOUT)
        apkeep = APKeepVerifier(DEVICES, LAYOUT)
        deltanet = DeltaNetVerifier(DEVICES, LAYOUT)
        flash.submit(updates)
        flash.flush()
        apkeep.process_updates(updates)
        deltanet.process_updates(updates)
        apkeep.check_invariants()
        flash.model.check_invariants()
        for header in range(LAYOUT.universe_size):
            values = LAYOUT.unflatten(header)
            expected = flash.snapshot.behavior(values)
            assert flash_behavior(flash, values) == expected
            assert apkeep_behavior(apkeep, values) == expected
            assert deltanet.behavior(values) == expected

    @given(unique_priority_blocks(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_inserts_then_deletes_agree(self, updates, data):
        flash = ModelWriter(DEVICES, LAYOUT)
        apkeep = APKeepVerifier(DEVICES, LAYOUT)
        deltanet = DeltaNetVerifier(DEVICES, LAYOUT)
        flash.submit(updates)
        flash.flush()
        apkeep.process_updates(updates)
        deltanet.process_updates(updates)
        if updates:
            doomed = data.draw(
                st.lists(st.sampled_from(updates), unique=True, max_size=4),
                label="deletions",
            )
            deletions = [delete(u.device, u.rule) for u in doomed]
            flash.submit(deletions)
            flash.flush()
            apkeep.process_updates(deletions)
            deltanet.process_updates(deletions)
        for header in range(LAYOUT.universe_size):
            values = LAYOUT.unflatten(header)
            expected = flash.snapshot.behavior(values)
            assert flash_behavior(flash, values) == expected
            assert apkeep_behavior(apkeep, values) == expected
            assert deltanet.behavior(values) == expected

    @given(unique_priority_blocks())
    @settings(max_examples=20, deadline=None)
    def test_ec_counts_agree(self, updates):
        flash = ModelWriter(DEVICES, LAYOUT)
        apkeep = APKeepVerifier(DEVICES, LAYOUT)
        flash.submit(updates)
        flash.flush()
        apkeep.process_updates(updates)
        assert flash.num_ecs() == apkeep.num_ecs()


class TestDelayMerge:
    """APKeep's §5.1 'delay merge' parameter."""

    def _split_then_rejoin_updates(self):
        # Split the space in two with different actions, then unify them —
        # eager merging coalesces immediately, delayed merging lags.
        return [
            insert(0, prefix_rule(1, 0b0000, 1, 7)),
            insert(0, prefix_rule(1, 0b1000, 1, 9)),
            insert(0, prefix_rule(2, 0b0000, 0, 5)),  # shadow all with 5
        ]

    def test_semantics_identical_regardless_of_delay(self):
        for delay in (0, 2, 10):
            v = APKeepVerifier(DEVICES, LAYOUT, delay_merge=delay)
            v.process_updates(self._split_then_rejoin_updates())
            for header in range(LAYOUT.universe_size):
                values = LAYOUT.unflatten(header)
                assert apkeep_behavior(v, values)[0] == 5, delay

    def test_delayed_table_temporarily_larger(self):
        eager = APKeepVerifier(DEVICES, LAYOUT, delay_merge=0)
        lazy = APKeepVerifier(DEVICES, LAYOUT, delay_merge=100)
        updates = self._split_then_rejoin_updates()
        eager.process_updates(updates)
        lazy.process_updates(updates)
        assert eager.num_ecs() == 1
        assert lazy.num_ecs() > eager.num_ecs()
        lazy._merge_pass()
        assert lazy.num_ecs() == eager.num_ecs()

    def test_merge_fires_on_schedule(self):
        v = APKeepVerifier(DEVICES, LAYOUT, delay_merge=3)
        v.process_updates(self._split_then_rejoin_updates())
        # Third update triggers the periodic merge pass.
        assert v.num_ecs() == 1
