"""Tests for the differential-fuzzing subsystem (repro.difftest)."""

import json

import pytest

from repro.cli import main
from repro.difftest import (
    DifferentialRunner,
    Scenario,
    ScenarioGenerator,
    Shrinker,
)
from repro.difftest.compare import ModelView
from repro.difftest.shrink import repair_updates
from repro.dataplane.rule import DROP, Rule
from repro.dataplane.update import delete, insert
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.telemetry import Telemetry

LAYOUT = dst_only_layout(4)


class TestScenarioGenerator:
    def test_same_seed_same_stream(self):
        """The acceptance contract: one seed, one scenario stream."""
        a = [s.as_dict() for s in ScenarioGenerator(seed=1234).stream(10)]
        b = [s.as_dict() for s in ScenarioGenerator(seed=1234).stream(10)]
        assert a == b

    def test_index_access_is_pure(self):
        gen = ScenarioGenerator(seed=7)
        streamed = [s.as_dict() for s in gen.stream(5)]
        direct = [gen.scenario(i).as_dict() for i in range(5)]
        assert streamed == direct
        assert gen.scenario(3).as_dict() == gen.scenario(3).as_dict()

    def test_different_seeds_differ(self):
        a = [s.as_dict() for s in ScenarioGenerator(seed=1).stream(5)]
        b = [s.as_dict() for s in ScenarioGenerator(seed=2).stream(5)]
        assert a != b

    def test_scenarios_json_round_trip(self):
        for scenario in ScenarioGenerator(seed=42).stream(8):
            data = json.loads(json.dumps(scenario.as_dict()))
            rebuilt = Scenario.from_dict(data)
            assert rebuilt.as_dict() == scenario.as_dict()
            assert rebuilt.updates == scenario.updates

    def test_generated_scenarios_build(self):
        for scenario in ScenarioGenerator(seed=9).stream(5):
            topo = scenario.build_topology()
            layout = scenario.build_layout()
            assert topo.externals(), "every scenario needs a sink"
            for update in scenario.updates:
                assert update.device in set(topo.switches())
                assert update.epoch == scenario.epoch
            for req in scenario.build_requirements(topo, layout):
                assert req.sources


@pytest.mark.fuzz
class TestDifferentialRunner:
    def test_smoke_profile_has_no_divergences(self):
        """repro fuzz --seed 1234 --iterations 50 --profile smoke is clean."""
        runner = DifferentialRunner()
        for scenario in ScenarioGenerator(seed=1234, profile="smoke").stream(50):
            result = runner.run(scenario)
            assert result.ok, (scenario.name, result.divergences)

    @pytest.mark.slow
    def test_deep_profile_has_no_divergences(self):
        runner = DifferentialRunner()
        for scenario in ScenarioGenerator(seed=1234, profile="deep").stream(25):
            result = runner.run(scenario)
            assert result.ok, (scenario.name, result.divergences)

    def test_telemetry_counters(self):
        telemetry = Telemetry()
        runner = DifferentialRunner(telemetry=telemetry)
        for scenario in ScenarioGenerator(seed=3).stream(4):
            runner.run(scenario)
        registry = telemetry.registry
        assert registry.value("difftest.scenarios") == 4
        assert registry.value("difftest.divergences") == 0
        assert registry.value("span.difftest.run.count") == 4

    def test_broken_engine_is_caught(self, monkeypatch):
        """A deliberately corrupted engine must produce divergences."""
        import repro.difftest.runner as runner_mod

        original = runner_mod.view_from_deltanet

        def corrupted(name, engine, verifier, layout):
            view = original(name, engine, verifier, layout)
            broken = [
                (pred, {d: DROP for d in actions})
                for pred, actions in view.entries
            ]
            return ModelView(name, engine, view.devices, broken)

        monkeypatch.setattr(runner_mod, "view_from_deltanet", corrupted)
        runner = DifferentialRunner()
        found = False
        for scenario in ScenarioGenerator(seed=1234).stream(10):
            result = runner.run(scenario)
            if result.ok:
                continue
            found = True
            assert all(d.engines[0] == "deltanet" for d in result.divergences)
            assert "behavior" in result.kinds
        assert found, "an all-DROP deltanet model should diverge somewhere"

    def test_crashing_engine_reports_error_divergence(self, monkeypatch):
        import repro.difftest.runner as runner_mod

        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(runner_mod, "view_from_apkeep", boom)
        runner = DifferentialRunner()
        result = runner.run(ScenarioGenerator(seed=1).scenario(0))
        errors = [d for d in result.divergences if d.kind == "error"]
        assert errors and errors[0].engines[0] == "apkeep"
        assert "engine exploded" in errors[0].detail


class TestShrinker:
    def test_repair_drops_dangling_operations(self):
        rule_a = Rule(1, Match.dst_prefix(0, 1, LAYOUT), 1)
        rule_b = Rule(2, Match.dst_prefix(8, 1, LAYOUT), DROP)
        repaired = repair_updates([
            delete(0, rule_a),       # dangling: never inserted
            insert(0, rule_b),
            insert(0, rule_b),       # duplicate insert
            delete(0, rule_b),
            delete(0, rule_b),       # dangling: already deleted
            insert(1, rule_a),
        ])
        assert repaired == [insert(0, rule_b), delete(0, rule_b), insert(1, rule_a)]

    @pytest.mark.fuzz
    def test_shrinks_divergent_scenario(self, monkeypatch):
        """With a corrupted engine, shrinking yields a smaller reproducer."""
        import repro.difftest.runner as runner_mod

        original = runner_mod.view_from_deltanet

        def corrupted(name, engine, verifier, layout):
            view = original(name, engine, verifier, layout)
            broken = [
                (pred, {d: DROP for d in actions})
                for pred, actions in view.entries
            ]
            return ModelView(name, engine, view.devices, broken)

        monkeypatch.setattr(runner_mod, "view_from_deltanet", corrupted)
        runner = DifferentialRunner()
        scenario = next(
            s
            for s in ScenarioGenerator(seed=1234).stream(20)
            if len(s.updates) >= 6 and not runner.run(s).ok
        )
        shrunk, shrunk_result = Shrinker(runner).shrink(scenario)
        assert not shrunk_result.ok
        assert set(shrunk_result.kinds) & set(runner.run(scenario).kinds)
        assert len(shrunk.updates) < len(scenario.updates)
        assert shrunk.name == scenario.name + "-min"
        # The shrunk scenario must still be a valid, replayable case.
        replay = DifferentialRunner().run(shrunk)
        assert not any(d.kind == "error" for d in replay.divergences)


class TestFuzzCli:
    def test_cli_smoke_run(self, capsys):
        code = main(["fuzz", "--seed", "5", "--iterations", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 divergent" in out

    def test_cli_time_budget(self, capsys):
        code = main([
            "fuzz", "--seed", "5", "--iterations", "100000",
            "--time-budget", "0.000001",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "time budget" in out
