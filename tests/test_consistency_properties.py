"""Property tests for Definition 16 — consistent early detection.

The paper's central CE2D guarantee (Appendix D.4): once a verifier emits a
deterministic verdict from partial information, that verdict equals the
verdict of the fully-converged network, for *any* arrival order of the
remaining updates.  We check it by brute force: random converged data
planes, random arrival orders, loop and reachability requirements.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.results import Verdict

from .conftest import case_rng
from repro.ce2d.verifier import SubspaceVerifier
from repro.dataplane.rule import DROP, Rule
from repro.dataplane.update import insert
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.generators import internet2, ring
from repro.network.topology import Topology
from repro.spec.requirement import requirement

LAYOUT = dst_only_layout(4)


def random_topology(rng: random.Random) -> Topology:
    """A connected random topology with 5-7 switches and one external."""
    n = rng.randint(5, 7)
    topo = Topology()
    for i in range(n):
        topo.add_device(f"s{i}")
    for i in range(1, n):
        topo.add_link(i, rng.randrange(i))
    extra = rng.randint(0, n)
    for _ in range(extra):
        u, v = rng.sample(range(n), 2)
        if not topo.has_link(u, v):
            topo.add_link(u, v)
    # The sink owns the whole space so the '>' selector resolves to it.
    sink = topo.add_external("sink", prefixes=[(0, 0)])
    topo.add_link(rng.randrange(n), sink)
    return topo


def random_fibs(topo: Topology, rng: random.Random):
    """A random converged data plane: each switch forwards each half-space
    to a random neighbor or drops."""
    updates_per_device = {}
    halves = [Match.dst_prefix(0, 1, LAYOUT), Match.dst_prefix(8, 1, LAYOUT)]
    for switch in topo.switches():
        updates = []
        for pri, half in enumerate(halves, start=1):
            neighbors = sorted(topo.neighbors(switch))
            action = rng.choice(neighbors + [DROP])
            if action != DROP:
                updates.append(insert(switch, Rule(pri, half, action)))
        updates_per_device[switch] = updates
    return updates_per_device


def loop_verdict_sequence(topo, updates_per_device, order):
    """Feed in the given order, returning the verdict after each device."""
    verifier = SubspaceVerifier(topo, LAYOUT, check_loops=True)
    verdicts = []
    for device in order:
        reports = verifier.receive(device, updates_per_device[device])
        verdicts.append(reports[0].verdict)
    return verdicts


class TestLoopConsistency:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_verdict_never_flips_and_matches_final(self, seed):
        rng = case_rng(seed)
        topo = random_topology(rng)
        fibs = random_fibs(topo, rng)
        switches = topo.switches()

        # Ground truth: verdict with complete information.
        final = loop_verdict_sequence(topo, fibs, switches)[-1]
        assert final is not Verdict.UNKNOWN  # fully synced ⇒ deterministic

        # Random arrival order: once deterministic, always the same verdict.
        order = list(switches)
        rng.shuffle(order)
        verdicts = loop_verdict_sequence(topo, fibs, order)
        deterministic = [v for v in verdicts if v is not Verdict.UNKNOWN]
        assert verdicts[-1] == final
        for v in deterministic:
            assert v == final, (seed, order, verdicts)
        # Monotone: after the first deterministic verdict, no UNKNOWN again.
        if deterministic:
            first = verdicts.index(deterministic[0])
            assert all(v == final for v in verdicts[first:])

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_two_orders_agree_on_final_verdict(self, seed):
        rng = case_rng(seed)
        topo = random_topology(rng)
        fibs = random_fibs(topo, rng)
        switches = topo.switches()
        order_a = list(switches)
        order_b = list(switches)
        rng.shuffle(order_a)
        rng.shuffle(order_b)
        final_a = loop_verdict_sequence(topo, fibs, order_a)[-1]
        final_b = loop_verdict_sequence(topo, fibs, order_b)[-1]
        assert final_a == final_b


def reach_verdict_sequence(topo, req, updates_per_device, order):
    verifier = SubspaceVerifier(topo, LAYOUT, requirements=[req])
    verdicts = []
    for device in order:
        reports = verifier.receive(device, updates_per_device[device])
        verdicts.append(reports[0].verdict)
    return verdicts


class TestReachabilityConsistency:
    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_reachability_verdict_consistent(self, seed):
        rng = case_rng(seed)
        topo = random_topology(rng)
        fibs = random_fibs(topo, rng)
        switches = topo.switches()
        req = requirement(
            "reach-sink", topo, LAYOUT, Match.wildcard(), ["s0"], "s0 .* >"
        )
        final = reach_verdict_sequence(topo, req, fibs, switches)[-1]
        order = list(switches)
        rng.shuffle(order)
        verdicts = reach_verdict_sequence(topo, req, fibs, order)
        assert verdicts[-1] == final
        for v in verdicts:
            if v is not Verdict.UNKNOWN:
                assert v == final, (seed, order, verdicts)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_verdict_matches_ground_truth_walk(self, seed):
        """The converged SATISFIED/VIOLATED verdict matches a brute-force
        walk of the final FIBs."""
        rng = case_rng(seed)
        topo = random_topology(rng)
        fibs = random_fibs(topo, rng)
        switches = topo.switches()
        sink = topo.externals()[0]
        req = requirement(
            "reach-sink", topo, LAYOUT, Match.wildcard(), ["s0"], "s0 .* >"
        )
        final = reach_verdict_sequence(topo, req, fibs, switches)[-1]

        # Ground truth: for EVERY header, walk the FIBs from s0.
        from repro.dataplane.fib import FibSnapshot

        snapshot = FibSnapshot(switches)
        for updates in fibs.values():
            for u in updates:
                snapshot.table(u.device).insert(u.rule)

        def walk_reaches_sink(values):
            current, seen = 0, set()
            while current not in seen:
                seen.add(current)
                action = snapshot.table(current).lookup(values)
                if action == DROP:
                    return False
                if action == sink:
                    return True
                if action not in snapshot.tables:
                    return False
                current = action
            return False  # loop

        all_reach = all(
            walk_reaches_sink(LAYOUT.unflatten(h))
            for h in range(LAYOUT.universe_size)
        )
        if final is Verdict.SATISFIED:
            # SATISFIED means every EC has a compliant path.
            assert all_reach, seed
        if all_reach:
            assert final is Verdict.SATISFIED, seed
