"""Tests for the Persistent Action Tree (PAT)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actiontree import EMPTY, ActionTreeStore


class TestBasics:
    def setup_method(self):
        self.store = ActionTreeStore()

    def test_empty(self):
        assert self.store.size(EMPTY) == 0
        assert self.store.get(EMPTY, 1) is None
        assert self.store.get(EMPTY, 1, "d") == "d"
        assert self.store.to_dict(EMPTY) == {}

    def test_set_get(self):
        root = self.store.set(EMPTY, 3, "a")
        root = self.store.set(root, 1, "b")
        assert self.store.get(root, 3) == "a"
        assert self.store.get(root, 1) == "b"
        assert self.store.get(root, 2) is None
        assert self.store.size(root) == 2

    def test_persistence(self):
        root1 = self.store.set(EMPTY, 1, "x")
        root2 = self.store.set(root1, 1, "y")
        assert self.store.get(root1, 1) == "x"
        assert self.store.get(root2, 1) == "y"

    def test_set_same_value_is_identity(self):
        root = self.store.set(EMPTY, 1, "x")
        assert self.store.set(root, 1, "x") == root

    def test_order_independence_gives_same_id(self):
        a = EMPTY
        for k in [5, 1, 9, 3, 7]:
            a = self.store.set(a, k, k * 10)
        b = EMPTY
        for k in [9, 7, 5, 3, 1]:
            b = self.store.set(b, k, k * 10)
        assert a == b  # hash-consing: structural equality is id equality

    def test_build_equals_sets(self):
        items = {4: "d", 2: "b", 8: "h"}
        built = self.store.build(items)
        manual = EMPTY
        for k, v in items.items():
            manual = self.store.set(manual, k, v)
        assert built == manual

    def test_uniform(self):
        root = self.store.uniform([0, 1, 2], "DROP")
        assert self.store.to_dict(root) == {0: "DROP", 1: "DROP", 2: "DROP"}

    def test_overwrite(self):
        root = self.store.uniform([0, 1, 2], 0)
        new = self.store.overwrite(root, {1: 9, 2: 8})
        assert self.store.to_dict(new) == {0: 0, 1: 9, 2: 8}
        assert self.store.to_dict(root) == {0: 0, 1: 0, 2: 0}

    def test_overwrite_identity_when_unchanged(self):
        root = self.store.uniform([0, 1], 5)
        assert self.store.overwrite(root, {0: 5}) == root

    def test_delete(self):
        root = self.store.build({1: "a", 2: "b", 3: "c"})
        smaller = self.store.delete(root, 2)
        assert self.store.to_dict(smaller) == {1: "a", 3: "c"}
        assert self.store.delete(smaller, 99) == smaller  # absent: no-op
        assert self.store.to_dict(root) == {1: "a", 2: "b", 3: "c"}

    def test_items_in_order(self):
        root = self.store.build({5: "e", 1: "a", 3: "c"})
        assert [k for k, _ in self.store.items(root)] == [1, 3, 5]

    def test_contains(self):
        root = self.store.set(EMPTY, 1, None)  # None value still "present"
        assert self.store.contains(root, 1)
        assert not self.store.contains(root, 2)


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 5)), max_size=40
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_dict_semantics(self, operations):
        store = ActionTreeStore()
        root = EMPTY
        reference = {}
        for key, value in operations:
            root = store.set(root, key, value)
            reference[key] = value
        assert store.to_dict(root) == reference
        assert store.size(root) == len(reference)

    @given(
        st.dictionaries(st.integers(0, 30), st.integers(0, 3), max_size=20),
        st.dictionaries(st.integers(0, 30), st.integers(0, 3), max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_canonical_ids(self, items_a, items_b):
        """Equal mappings yield equal ids; different mappings different ids."""
        store = ActionTreeStore()
        a = store.build(items_a)
        b = store.build(items_b)
        assert (a == b) == (items_a == items_b)

    @given(st.dictionaries(st.integers(0, 200), st.integers(0, 3), min_size=30))
    @settings(max_examples=20, deadline=None)
    def test_treap_stays_balanced(self, items):
        store = ActionTreeStore()
        root = store.build(items)
        # Expected depth ~ 2-3·log2(n); allow generous slack.
        assert store.depth(root) <= 6 * max(1, len(items).bit_length())

    @given(
        st.dictionaries(st.integers(0, 30), st.integers(0, 3), min_size=1),
        st.lists(st.integers(0, 30), max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_delete_matches_dict(self, items, removals):
        store = ActionTreeStore()
        root = store.build(items)
        reference = dict(items)
        for key in removals:
            root = store.delete(root, key)
            reference.pop(key, None)
        assert store.to_dict(root) == reference
