"""Seeded property tests for the cost-model backend selector.

The selector (:mod:`repro.predicates.select`) picks a representation per
workload from cheap FIB statistics.  Two properties gate it:

* **safety** — whatever it picks, Flash on the selected backend returns
  the same verdicts and behaviors as Flash on the BDD backend (checked
  through the differential runner's ``@auto`` rows over seeded random
  scenarios);
* **effectiveness** — prefix-only workloads actually select intervals
  (the whole point of having a second backend), and suffix or explosive
  workloads fall back to BDDs.

A checked-in corpus case (``edge_prefix_suffix_boundary``) pins the
boundary: one suffix rule inside an otherwise prefix FIB must flip the
choice to ``bdd`` and still replay divergence-free on every pairing.
"""

import random
from pathlib import Path

import pytest

from repro.difftest import DifferentialRunner, ScenarioGenerator
from repro.difftest.corpus import load_scenario
from repro.headerspace.fields import dst_only_layout, dst_src_layout
from repro.headerspace.match import Match, Pattern
from repro.predicates import (
    FibStats,
    profile_updates,
    resolve_backend,
    select_backend,
    select_for_updates,
)
from repro.predicates.select import (
    DEFAULT_INTERVAL_CAP,
    EST_CAP,
    estimate_match_intervals,
    profile_matches,
)
from repro.telemetry import MetricsRegistry

CORPUS_DIR = Path(__file__).parent / "corpus"


def _match(ternaries, field="dst"):
    return Match({field: Pattern(tuple(ternaries))})


# ---------------------------------------------------------------------------
# the estimator mirrors real interval expansion
# ---------------------------------------------------------------------------
def test_estimate_matches_materialised_expansion():
    """The no-materialisation estimate equals (or safely bounds) the
    true interval count of the compiled match."""
    layout = dst_only_layout(6)
    rng = random.Random(20260808)
    for _ in range(60):
        width = 6
        mask = rng.randrange(1 << width)
        value = rng.randrange(1 << width) & mask
        match = _match([(value, mask)])
        est = estimate_match_intervals(match, layout)
        actual = len(match.to_interval_set(layout))
        assert est >= actual
        # For a single ternary the bound is exact.
        assert est == actual


def test_estimate_prefix_is_one_suffix_explodes():
    layout = dst_only_layout(8)
    prefix = _match([(0b10100000, 0b11110000)])  # 1010****
    suffix = _match([(0b00000001, 0b00000001)])  # *******1
    assert estimate_match_intervals(prefix, layout) == 1
    assert estimate_match_intervals(suffix, layout) == 1 << 7


def test_estimate_multi_field_point_enumeration():
    """A constrained low field forces point enumeration of upper fields."""
    layout = dst_src_layout(4, 4)
    # dst prefix alone: one interval.
    assert estimate_match_intervals(_match([(8, 12)]), layout) == 1
    # dst prefix over a constrained src: dst enumerates its 4 points.
    both = Match(
        {"dst": Pattern(((8, 12),)), "src": Pattern(((2, 15),))}
    )
    assert estimate_match_intervals(both, layout) == 4
    # src alone constrained: the absent dst field enumerates fully.
    src_only = _match([(2, 15)], field="src")
    assert estimate_match_intervals(src_only, layout) == 1 << 4


def test_estimate_is_capped():
    layout = dst_only_layout(30)
    explosive = _match([(1, 1)])  # 29 high wildcards
    assert estimate_match_intervals(explosive, layout) <= EST_CAP


# ---------------------------------------------------------------------------
# profiling and the decision rule
# ---------------------------------------------------------------------------
def test_profile_classifies_shapes():
    layout = dst_only_layout(4)
    matches = [
        _match([(8, 12)]),        # prefix 10**
        Match.wildcard(),         # no constraints at all
        _match([(0, 0)]),         # full-field wildcard: still a prefix
        _match([(1, 1)]),         # suffix ***1
        _match([(6, 15)]),        # exact (a prefix with no wildcards)
    ]
    stats = profile_matches(matches, layout)
    assert stats.matches == 5
    assert stats.prefix_only_matches == 3
    assert stats.wildcard_matches == 1
    assert stats.suffix_matches == 1
    assert not stats.prefix_only
    assert stats.max_intervals_per_match == 8  # the suffix: 2**3


def test_selector_prefix_only_picks_intervals():
    registry = MetricsRegistry()
    stats = FibStats(
        matches=10, prefix_only_matches=9, wildcard_matches=1,
        max_intervals_per_match=2,
    )
    assert stats.prefix_only
    assert select_backend(stats, registry) == "intervals"
    counters = registry.snapshot()["counters"]
    assert counters["predicates.select.decisions"] == 1
    assert counters["predicates.select.intervals"] == 1
    assert "predicates.select.bdd" not in counters


def test_selector_suffix_or_explosive_picks_bdd():
    registry = MetricsRegistry()
    suffixy = FibStats(
        matches=10, prefix_only_matches=9, suffix_matches=1,
        max_intervals_per_match=8,
    )
    assert select_backend(suffixy, registry) == "bdd"
    explosive = FibStats(
        matches=10, prefix_only_matches=10,
        max_intervals_per_match=DEFAULT_INTERVAL_CAP + 1,
    )
    assert select_backend(explosive, registry) == "bdd"
    counters = registry.snapshot()["counters"]
    assert counters["predicates.select.decisions"] == 2
    assert counters["predicates.select.bdd"] == 2


def test_resolve_backend_passthrough_and_validation():
    assert resolve_backend("bdd") == "bdd"
    assert resolve_backend("intervals") == "intervals"
    assert resolve_backend("auto") == "bdd"  # nothing to profile
    with pytest.raises(ValueError):
        resolve_backend("nonsense")


# ---------------------------------------------------------------------------
# property: prefix-only generated workloads select intervals
# ---------------------------------------------------------------------------
def test_generated_prefix_workloads_select_intervals():
    """Traces from the prefix-only FIB generators always route to the
    interval backend; seeded scenario streams always resolve to *some*
    valid backend and the decision is deterministic per scenario."""
    from repro.fibgen.shortest_path import std_fib
    from repro.dataplane.trace import inserts_only
    from repro.network import generators

    topo = generators.internet2()
    for switch in list(topo.switches()):
        topo.add_link(switch, topo.add_external(f"h{switch}"))
    layout = dst_only_layout(8)
    updates = list(inserts_only(std_fib(topo, layout)))
    assert updates
    stats = profile_updates(updates, layout)
    assert stats.prefix_only
    assert select_for_updates(updates, layout) == "intervals"


def test_generated_scenarios_decide_deterministically():
    generator = ScenarioGenerator(seed=5, profile="smoke")
    for scenario in generator.stream(20):
        layout = scenario.build_layout()
        first = resolve_backend("auto", scenario.updates, layout)
        second = resolve_backend("auto", scenario.updates, layout)
        assert first == second
        assert first in ("bdd", "intervals")
        stats = profile_updates(scenario.updates, layout)
        if stats.suffix_matches:
            assert first == "bdd"


# ---------------------------------------------------------------------------
# property: the selected backend's verdicts equal the BDD backend's
# ---------------------------------------------------------------------------
def test_selected_backend_matches_bdd_verdicts():
    """The safety property, end to end: flash rows on the auto-selected
    backend diverge from the bdd rows (and the oracle) exactly never."""
    runner = DifferentialRunner(backends=("bdd", "auto"))
    generator = ScenarioGenerator(seed=424242, profile="smoke")
    resolved = set()
    for scenario in generator.stream(15):
        result = runner.run(scenario)
        assert result.ok, (scenario.name, result.divergences)
        resolved.update(result.stats.get("backends", {}).values())
    assert resolved <= {"bdd", "intervals"}


# ---------------------------------------------------------------------------
# the checked-in boundary case
# ---------------------------------------------------------------------------
def test_corpus_boundary_case_pins_the_selector():
    """One suffix rule inside a prefix FIB flips the choice to bdd."""
    scenario = load_scenario(
        CORPUS_DIR / "edge_prefix_suffix_boundary.json"
    )
    layout = scenario.build_layout()
    stats = profile_updates(scenario.updates, layout)
    assert stats.suffix_matches == 1
    assert not stats.prefix_only
    assert resolve_backend("auto", scenario.updates, layout) == "bdd"
    # Remove the suffix rule and the same FIB flips back to intervals.
    prefix_only = [
        u
        for u in scenario.updates
        if profile_matches([u.rule.match], layout).suffix_matches == 0
    ]
    assert len(prefix_only) == len(scenario.updates) - 1
    assert resolve_backend("auto", prefix_only, layout) == "intervals"


def test_corpus_boundary_case_replays_on_every_pairing():
    scenario = load_scenario(
        CORPUS_DIR / "edge_prefix_suffix_boundary.json"
    )
    runner = DifferentialRunner(backends=("bdd", "intervals", "auto"))
    result = runner.run(scenario)
    assert result.ok, result.divergences
    backends = result.stats.get("backends", {})
    assert set(backends.values()) == {"bdd"}
