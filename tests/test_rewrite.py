"""Tests for the §7 header-rewrite extension."""

import pytest

from repro.core.model_manager import ModelWriter
from repro.core.rewrite import RewriteAction, RewriteAwareChecker, action_next_hops
from repro.dataplane.rule import DROP, Rule
from repro.dataplane.update import insert
from repro.errors import HeaderSpaceError
from repro.headerspace.fields import dst_only_layout, dst_src_layout
from repro.headerspace.match import Match, Pattern
from repro.network.topology import Topology

LAYOUT = dst_only_layout(4)


def build(topology, updates):
    manager = ModelWriter(topology.switches(), LAYOUT)
    manager.submit(updates)
    manager.flush()
    return manager


def nat_topology():
    topo = Topology()
    a = topo.add_device("a")
    b = topo.add_device("b")
    sink = topo.add_external("sink")
    topo.add_link(a, b)
    topo.add_link(b, sink)
    return topo, a, b, sink


class TestRewriteAction:
    def test_next_hops(self):
        action = RewriteAction(next_hop=3, field="dst", value=7)
        assert action_next_hops(action) == (3,)
        assert action_next_hops(5) == (5,)
        assert action_next_hops(DROP) == ()

    def test_repr(self):
        assert "dst:=7" in repr(RewriteAction(3, "dst", 7))


class TestRewriteImage:
    def test_image_is_constant_field(self):
        topo, a, b, sink = nat_topology()
        manager = build(topo, [])
        checker = RewriteAwareChecker(manager, topo)
        whole = manager.engine.true
        image = checker.rewrite_image(whole, RewriteAction(b, "dst", 5))
        # The image is exactly "dst == 5".
        assert image.sat_count() == 1

    def test_image_of_subset(self):
        topo, a, b, sink = nat_topology()
        manager = build(topo, [])
        checker = RewriteAwareChecker(manager, topo)
        half = manager.compiler.compile(Match.dst_prefix(0b1000, 1, LAYOUT))
        image = checker.rewrite_image(half, RewriteAction(b, "dst", 2))
        assert image.sat_count() == 1  # single-field layout collapses

    def test_multifield_image_keeps_other_fields(self):
        layout = dst_src_layout(4, 4)
        topo, a, b, sink = nat_topology()
        manager = ModelWriter(topo.switches(), layout)
        checker = RewriteAwareChecker(manager, topo)
        src_half = manager.compiler.compile(
            Match({"src": Pattern.prefix(0b1000, 1, 4)})
        )
        image = checker.rewrite_image(src_half, RewriteAction(b, "dst", 3))
        # dst pinned to 3, src still restricted to its half: 8 headers.
        assert image.sat_count() == 8

    def test_bad_value_rejected(self):
        topo, a, b, sink = nat_topology()
        manager = build(topo, [])
        checker = RewriteAwareChecker(manager, topo)
        with pytest.raises(HeaderSpaceError):
            checker.rewrite_image(
                manager.engine.true, RewriteAction(b, "dst", 99)
            )


class TestNatBounceLoop:
    """A loop that only exists ACROSS a rewrite.

    a rewrites dst:=8 and sends to b; b sends dst∈[8,15] back to a;
    a sends dst∈[8,15] to b... a↔b loop, but no single EC loops at a
    per-EC level until the rewrite jump is followed.
    """

    def _build(self):
        topo, a, b, sink = nat_topology()
        low = Match.dst_prefix(0b0000, 1, LAYOUT)
        high = Match.dst_prefix(0b1000, 1, LAYOUT)
        updates = [
            # a: NAT low-half traffic to dst=8, forward to b.
            insert(a, Rule(2, low, RewriteAction(b, "dst", 8))),
            # a: high-half traffic goes to b unchanged.
            insert(a, Rule(1, high, b)),
            # b: high-half traffic bounces back to a (the misconfiguration).
            insert(b, Rule(1, high, a)),
            # b: low-half would be delivered (never reached post-NAT).
            insert(b, Rule(2, low, sink)),
        ]
        manager = build(topo, updates)
        return topo, manager, a, b, sink

    def test_loop_found_across_rewrite(self):
        topo, manager, a, b, sink = self._build()
        checker = RewriteAwareChecker(manager, topo)
        loop = checker.find_loop()
        assert loop is not None
        devices = {d for d, _ in loop}
        assert devices == {a, b}

    def test_trace_witnesses_the_bounce(self):
        topo, manager, a, b, sink = self._build()
        checker = RewriteAwareChecker(manager, topo)
        path = checker.trace(a, {"dst": 0b0001}, max_hops=6)
        # After the NAT hop the header is 8 and ping-pongs a↔b.
        assert path[1][1]["dst"] == 8
        visited = [d for d, _ in path]
        assert visited.count(a) >= 2 and visited.count(b) >= 2

    def test_no_loop_when_b_delivers(self):
        topo, a, b, sink = nat_topology()
        low = Match.dst_prefix(0b0000, 1, LAYOUT)
        high = Match.dst_prefix(0b1000, 1, LAYOUT)
        updates = [
            insert(a, Rule(2, low, RewriteAction(b, "dst", 8))),
            insert(b, Rule(1, high, sink)),
        ]
        manager = build(topo, updates)
        checker = RewriteAwareChecker(manager, topo)
        assert checker.find_loop() is None

    def test_reachability_follows_rewrite(self):
        topo, a, b, sink = nat_topology()
        low = Match.dst_prefix(0b0000, 1, LAYOUT)
        high = Match.dst_prefix(0b1000, 1, LAYOUT)
        updates = [
            insert(a, Rule(2, low, RewriteAction(b, "dst", 8))),
            insert(b, Rule(1, high, sink)),
        ]
        manager = build(topo, updates)
        checker = RewriteAwareChecker(manager, topo)
        assert checker.reachable_externals(a, {"dst": 0b0011}) == {sink}
        # Without following the rewrite, dst=3 at b would be dropped:
        assert manager.snapshot.table(b).lookup({"dst": 3}) == DROP
