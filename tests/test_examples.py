"""Smoke tests: every shipped example must run clean (deliverable b)."""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "update_storm.py",
    "early_detection.py",
    "waypoint_policy.py",
    "bgp_convergence.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, capsys, monkeypatch):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    assert os.path.exists(path), path
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_examples_list_is_complete():
    shipped = {
        f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
    }
    assert shipped == set(EXAMPLES), "update EXAMPLES when adding examples"
