"""Tests for parallel subspace verification (repro.core.parallel)."""

import pytest

from repro.core.parallel import run_partitioned
from repro.core.subspace import SubspacePartition
from repro.dataplane.rule import Rule
from repro.dataplane.update import insert
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.generators import ring

LAYOUT = dst_only_layout(6)


def setup_workload():
    topo = ring(4)
    partition = SubspacePartition.dst_prefix_partition(
        LAYOUT, [(0x00, 1), (0x20, 1)]
    )
    updates = [
        insert(0, Rule(1, Match.dst_prefix(0x00, 1, LAYOUT), 1)),
        insert(1, Rule(1, Match.dst_prefix(0x20, 1, LAYOUT), 2)),
        insert(2, Rule(1, Match.wildcard(), 3)),
    ]
    return topo, partition, updates


class TestSequential:
    def test_routes_and_stats(self):
        topo, partition, updates = setup_workload()
        results, wall, registry = run_partitioned(
            topo.switches(), LAYOUT, partition, updates, processes=None
        )
        assert len(results) == 2
        assert wall >= 0
        # The merged registry aggregates worker telemetry: one worker span
        # per subspace plus the predicate-op counters each worker tallied.
        assert registry.value("span.parallel.worker.count") == 2
        assert registry.value("parallel.workers") == 0  # sequential run
        total_ops = sum(r.predicate_ops for r in results)
        snap = registry.snapshot()
        merged_ops = sum(
            v
            for n, v in snap["counters"].items()
            if n.startswith("predicate.ops.")
        )
        assert merged_ops == total_ops
        by_name = {r.subspace: r for r in results}
        assert by_name["sub0"].updates == 2  # low-prefix rule + wildcard
        assert by_name["sub1"].updates == 2
        assert all(r.ecs >= 1 for r in results)

    def test_zero_processes_means_sequential(self):
        topo, partition, updates = setup_workload()
        results, _, _ = run_partitioned(
            topo.switches(), LAYOUT, partition, updates, processes=0
        )
        assert len(results) == 2


class TestParallelPool:
    def test_pool_matches_sequential(self):
        topo, partition, updates = setup_workload()
        seq, _, reg_seq = run_partitioned(
            topo.switches(), LAYOUT, partition, updates, processes=None
        )
        par, _, reg_par = run_partitioned(
            topo.switches(), LAYOUT, partition, updates, processes=2
        )
        for s, p in zip(seq, par):
            assert s.subspace == p.subspace
            assert s.ecs == p.ecs
            assert s.predicate_ops == p.predicate_ops
            assert s.updates == p.updates
        # Worker telemetry crosses the process boundary as snapshots and
        # merges into the parent registry identically either way.
        assert reg_par.value("parallel.workers") == 2
        seq_counters = reg_seq.snapshot()["counters"]
        par_counters = reg_par.snapshot()["counters"]
        for name in seq_counters:
            if name.startswith("predicate.ops."):
                assert par_counters.get(name) == seq_counters[name]
