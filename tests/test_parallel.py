"""Tests for parallel subspace verification (repro.core.parallel)."""

import pytest

from repro.core.parallel import run_partitioned
from repro.core.subspace import SubspacePartition
from repro.dataplane.rule import Rule
from repro.dataplane.update import insert
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.generators import ring

LAYOUT = dst_only_layout(6)


def setup_workload():
    topo = ring(4)
    partition = SubspacePartition.dst_prefix_partition(
        LAYOUT, [(0x00, 1), (0x20, 1)]
    )
    updates = [
        insert(0, Rule(1, Match.dst_prefix(0x00, 1, LAYOUT), 1)),
        insert(1, Rule(1, Match.dst_prefix(0x20, 1, LAYOUT), 2)),
        insert(2, Rule(1, Match.wildcard(), 3)),
    ]
    return topo, partition, updates


class TestSequential:
    def test_routes_and_stats(self):
        topo, partition, updates = setup_workload()
        results, wall = run_partitioned(
            topo.switches(), LAYOUT, partition, updates, processes=None
        )
        assert len(results) == 2
        assert wall >= 0
        by_name = {r.subspace: r for r in results}
        assert by_name["sub0"].updates == 2  # low-prefix rule + wildcard
        assert by_name["sub1"].updates == 2
        assert all(r.ecs >= 1 for r in results)

    def test_zero_processes_means_sequential(self):
        topo, partition, updates = setup_workload()
        results, _ = run_partitioned(
            topo.switches(), LAYOUT, partition, updates, processes=0
        )
        assert len(results) == 2


class TestParallelPool:
    def test_pool_matches_sequential(self):
        topo, partition, updates = setup_workload()
        seq, _ = run_partitioned(
            topo.switches(), LAYOUT, partition, updates, processes=None
        )
        par, _ = run_partitioned(
            topo.switches(), LAYOUT, partition, updates, processes=2
        )
        for s, p in zip(seq, par):
            assert s.subspace == p.subspace
            assert s.ecs == p.ecs
            assert s.predicate_ops == p.predicate_ops
            assert s.updates == p.updates
