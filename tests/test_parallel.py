"""Tests for parallel subspace verification (repro.core.parallel)."""

import pytest

from repro.core.parallel import PartitionedRunResult, run_partitioned
from repro.core.subspace import SubspacePartition
from repro.dataplane.rule import Rule
from repro.dataplane.update import insert
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.generators import ring
from repro.resilience import RetryPolicy

LAYOUT = dst_only_layout(6)


def setup_workload():
    topo = ring(4)
    partition = SubspacePartition.dst_prefix_partition(
        LAYOUT, [(0x00, 1), (0x20, 1)]
    )
    updates = [
        insert(0, Rule(1, Match.dst_prefix(0x00, 1, LAYOUT), 1)),
        insert(1, Rule(1, Match.dst_prefix(0x20, 1, LAYOUT), 2)),
        insert(2, Rule(1, Match.wildcard(), 3)),
    ]
    return topo, partition, updates


class TestSequential:
    def test_routes_and_stats(self):
        topo, partition, updates = setup_workload()
        result = run_partitioned(
            topo.switches(), LAYOUT, partition, updates, processes=None
        )
        results, registry = result.stats, result.registry
        assert len(results) == 2
        assert result.wall_seconds >= 0
        # The merged registry aggregates worker telemetry: one worker span
        # per subspace plus the predicate-op counters each worker tallied.
        assert registry.value("span.parallel.worker.count") == 2
        assert registry.value("parallel.workers") == 0  # sequential run
        total_ops = sum(r.predicate_ops for r in results)
        snap = registry.snapshot()
        merged_ops = sum(
            v
            for n, v in snap["counters"].items()
            if n.startswith("predicate.ops.")
        )
        assert merged_ops == total_ops
        by_name = {r.subspace: r for r in results}
        assert by_name["sub0"].updates == 2  # low-prefix rule + wildcard
        assert by_name["sub1"].updates == 2
        assert all(r.ecs >= 1 for r in results)

    def test_zero_processes_means_sequential(self):
        topo, partition, updates = setup_workload()
        result = run_partitioned(
            topo.switches(), LAYOUT, partition, updates, processes=0
        )
        assert len(result.stats) == 2


class TestParallelPool:
    def test_pool_matches_sequential(self):
        topo, partition, updates = setup_workload()
        seq_result = run_partitioned(
            topo.switches(), LAYOUT, partition, updates, processes=None
        )
        par_result = run_partitioned(
            topo.switches(), LAYOUT, partition, updates, processes=2
        )
        seq, reg_seq = seq_result.stats, seq_result.registry
        par, reg_par = par_result.stats, par_result.registry
        for s, p in zip(seq, par):
            assert s.subspace == p.subspace
            assert s.ecs == p.ecs
            assert s.predicate_ops == p.predicate_ops
            assert s.updates == p.updates
        # Worker telemetry crosses the process boundary as snapshots and
        # merges into the parent registry identically either way.
        assert reg_par.value("parallel.workers") == 2
        seq_counters = reg_seq.snapshot()["counters"]
        par_counters = reg_par.snapshot()["counters"]
        for name in seq_counters:
            if name.startswith("predicate.ops."):
                assert par_counters.get(name) == seq_counters[name]


class TestSupervision:
    """Hardened-pool behaviour: per-task failure capture and recovery."""

    def test_result_object_is_not_iterable(self):
        """The PR-4 triple-unpacking shim is gone: results are accessed
        by attribute, and accidental tuple unpacking fails loudly."""
        topo, partition, updates = setup_workload()
        result = run_partitioned(
            topo.switches(), LAYOUT, partition, updates, processes=None
        )
        assert isinstance(result, PartitionedRunResult)
        assert result.stats and result.wall_seconds >= 0
        assert result.registry is not None
        with pytest.raises(TypeError):
            iter(result)
        assert result.ok and result.failures == []

    def test_worker_raise_does_not_lose_other_subspaces(self):
        """Regression: one worker raising mid-task used to abort the whole
        pool; now every other subspace's result survives and the failing
        one recovers via retry."""
        topo, partition, updates = setup_workload()
        clean = run_partitioned(
            topo.switches(), LAYOUT, partition, updates, processes=None
        )
        result = run_partitioned(
            topo.switches(),
            LAYOUT,
            partition,
            updates,
            processes=2,
            retry=RetryPolicy(max_retries=1, backoff_seconds=0.01),
            faults={"sub0": "raise"},  # raise on attempt 0, succeed after
        )
        assert result.ok
        assert {s.subspace for s in result.stats} == {"sub0", "sub1"}
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.subspace == "sub0" and failure.recovered
        assert "InjectedWorkerFault" in failure.error
        by_name = {s.subspace: s for s in result.stats}
        clean_by_name = {s.subspace: s for s in clean.stats}
        for name in by_name:
            assert by_name[name].ecs == clean_by_name[name].ecs
            assert by_name[name].updates == clean_by_name[name].updates
        assert result.registry.value("resilience.subspace.recovered") == 1
        assert result.registry.value("resilience.subspace.failures") == 0

    def test_exhausted_pool_retries_fall_back_to_sequential(self):
        topo, partition, updates = setup_workload()
        result = run_partitioned(
            topo.switches(),
            LAYOUT,
            partition,
            updates,
            processes=2,
            # The fault outlives the single pool attempt (max_retries=0)
            # but not the sequential re-execution's higher attempt index.
            retry=RetryPolicy(max_retries=0, backoff_seconds=0.01),
            faults={"sub1": "raise"},
        )
        assert result.ok
        assert {s.subspace for s in result.stats} == {"sub0", "sub1"}
        reg = result.registry
        assert reg.value("resilience.subspace.sequential_reruns") == 1
        assert result.failures[0].recovered

    def test_unrecoverable_fault_is_reported_not_raised(self):
        topo, partition, updates = setup_workload()
        result = run_partitioned(
            topo.switches(),
            LAYOUT,
            partition,
            updates,
            processes=None,
            retry=RetryPolicy(max_retries=1, backoff_seconds=0.0),
            faults={"sub0": "raise@99"},  # never stops failing
        )
        assert not result.ok
        assert {s.subspace for s in result.stats} == {"sub1"}
        failure = result.failures[0]
        assert failure.subspace == "sub0" and not failure.recovered
        assert failure.attempts == 2 and len(failure.history) == 2
        assert "InjectedWorkerFault" in failure.traceback

    @pytest.mark.slow
    def test_hard_worker_death_caught_by_watchdog(self):
        """A worker dying via os._exit never reports back; the per-task
        watchdog reaps it and the subspace recovers sequentially."""
        topo, partition, updates = setup_workload()
        result = run_partitioned(
            topo.switches(),
            LAYOUT,
            partition,
            updates,
            processes=2,
            retry=RetryPolicy(
                max_retries=0, backoff_seconds=0.01, task_timeout=15.0
            ),
            faults={"sub0": "exit"},
        )
        assert result.ok
        assert {s.subspace for s in result.stats} == {"sub0", "sub1"}
        failure = result.failures[0]
        assert failure.subspace == "sub0"
        assert failure.timed_out and failure.recovered


class TestModelCollection:
    """collect_models ships worker EC tables home as FBW1 wire blobs."""

    def test_models_arrive_in_one_shared_engine(self):
        topo, partition, updates = setup_workload()
        result = run_partitioned(
            topo.switches(),
            LAYOUT,
            partition,
            updates,
            processes=None,
            collect_models=True,
        )
        assert set(result.models) == {"sub0", "sub1"}
        assert result.model_engine is not None
        for name, entries in result.models.items():
            assert entries, f"{name}: empty model"
            for pred, actions in entries:
                assert pred.engine is result.model_engine
                assert not pred.is_false
                assert set(actions) == set(topo.switches())
        # Subspaces are disjoint, so their EC unions must be too.
        union0 = result.model_engine.disj_many(
            p for p, _ in result.models["sub0"]
        )
        union1 = result.model_engine.disj_many(
            p for p, _ in result.models["sub1"]
        )
        assert (union0 & union1).is_false

    def test_pool_models_match_sequential(self):
        topo, partition, updates = setup_workload()
        seq = run_partitioned(
            topo.switches(), LAYOUT, partition, updates,
            processes=None, collect_models=True,
        )
        par = run_partitioned(
            topo.switches(), LAYOUT, partition, updates,
            processes=2, collect_models=True,
        )
        for name in seq.models:
            seq_view = {
                tuple(sorted(actions.items())): pred.sat_count()
                for pred, actions in seq.models[name]
            }
            par_view = {
                tuple(sorted(actions.items())): pred.sat_count()
                for pred, actions in par.models[name]
            }
            assert seq_view == par_view

    def test_models_empty_when_not_requested(self):
        topo, partition, updates = setup_workload()
        result = run_partitioned(
            topo.switches(), LAYOUT, partition, updates, processes=None
        )
        assert result.models == {}
        assert result.model_engine is None
