"""Soundness of early loop detection (the Appendix-D.4 guarantee) plus the
§5.1 custom-checker extension point.

The strongest test we can run: when the detector claims VIOLATED from
*partial* information, every possible completion of the unsynchronised
devices' FIBs must still contain that loop; and on fully-synchronised
models the verdict must match a brute-force cycle search over every EC.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.results import Verdict, VerificationReport
from repro.ce2d.verifier import Checker, SubspaceVerifier
from repro.dataplane.rule import DROP, Rule, next_hops_of
from repro.dataplane.update import insert
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.topology import Topology

LAYOUT = dst_only_layout(3)


def random_topology(rng):
    n = rng.randint(4, 6)
    topo = Topology()
    for i in range(n):
        topo.add_device(f"s{i}")
    for i in range(1, n):
        topo.add_link(i, rng.randrange(i))
    for _ in range(rng.randint(1, n)):
        u, v = rng.sample(range(n), 2)
        if not topo.has_link(u, v):
            topo.add_link(u, v)
    return topo


def random_action(topo, device, rng):
    return rng.choice(sorted(topo.neighbors(device)) + [DROP])


def random_fibs(topo, rng):
    fibs = {}
    halves = [Match.dst_prefix(0, 1, LAYOUT), Match.dst_prefix(4, 1, LAYOUT)]
    for switch in topo.switches():
        updates = []
        for pri, half in enumerate(halves, start=1):
            action = random_action(topo, switch, rng)
            if action != DROP:
                updates.append(insert(switch, Rule(pri, half, action)))
        fibs[switch] = updates
    return fibs


def brute_force_has_loop(topo, fibs):
    """Ground truth on a complete data plane: walk every header from every
    switch and look for a revisit."""
    from repro.dataplane.fib import FibSnapshot

    snapshot = FibSnapshot(topo.switches())
    for updates in fibs.values():
        for u in updates:
            snapshot.table(u.device).insert(u.rule)
    for header in range(LAYOUT.universe_size):
        values = LAYOUT.unflatten(header)
        for start in topo.switches():
            current, seen = start, set()
            while True:
                if current in seen:
                    return True
                seen.add(current)
                action = snapshot.table(current).lookup(values)
                hops = next_hops_of(action)
                if not hops or hops[0] not in snapshot.tables:
                    break
                current = hops[0]
    return False


class TestFullSyncMatchesBruteForce:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_converged_verdict_equals_ground_truth(self, seed):
        rng = random.Random(seed)
        topo = random_topology(rng)
        fibs = random_fibs(topo, rng)
        verifier = SubspaceVerifier(topo, LAYOUT, check_loops=True)
        for device in topo.switches():
            reports = verifier.receive(device, fibs[device])
        expected = brute_force_has_loop(topo, fibs)
        final = reports[0].verdict
        assert final is (Verdict.VIOLATED if expected else Verdict.SATISFIED), seed


class TestPartialSyncSoundness:
    @given(st.integers(0, 10_000), st.data())
    @settings(max_examples=40, deadline=None)
    def test_early_violation_survives_any_completion(self, seed, data):
        rng = random.Random(seed)
        topo = random_topology(rng)
        fibs = random_fibs(topo, rng)
        switches = list(topo.switches())
        rng.shuffle(switches)
        verifier = SubspaceVerifier(topo, LAYOUT, check_loops=True)
        violated_after = None
        for i, device in enumerate(switches):
            reports = verifier.receive(device, fibs[device])
            if reports[0].verdict is Verdict.VIOLATED:
                violated_after = i
                break
        if violated_after is None:
            return  # nothing to check this run
        synced = switches[: violated_after + 1]
        unsynced = switches[violated_after + 1 :]
        # Any completion of the unsynced FIBs must still loop: try several
        # random completions plus the all-drop completion.
        completions = [dict.fromkeys(unsynced, [])]
        for _ in range(3):
            crng = random.Random(data.draw(st.integers(0, 10_000)))
            completions.append(
                {d: random_fibs(topo, crng)[d] for d in unsynced}
            )
        for completion in completions:
            candidate = {d: fibs[d] for d in synced}
            candidate.update(completion)
            assert brute_force_has_loop(topo, candidate), (
                seed,
                synced,
                completion,
            )


class TestCustomChecker:
    """The §5.1 extension point: a blackhole (all-DROP device) detector."""

    class BlackholeChecker(Checker):
        def __init__(self, topology):
            self.topology = topology
            self.blackholes = set()

        def on_model_update(self, deltas, new_synced, model):
            for device in new_synced:
                if all(
                    model.action_of(d.vector, device) in (DROP, None)
                    for d in deltas
                ):
                    self.blackholes.add(device)
            return VerificationReport(
                requirement="no-blackholes",
                verdict=Verdict.VIOLATED if self.blackholes else Verdict.UNKNOWN,
                detail=f"blackholes={sorted(self.blackholes)}",
            )

    def test_custom_checker_runs_and_reports(self):
        topo = random_topology(random.Random(1))
        verifier = SubspaceVerifier(topo, LAYOUT)
        checker = self.BlackholeChecker(topo)
        verifier.add_checker(checker)
        first = topo.switches()[0]
        reports = verifier.receive(first, [])  # all-DROP device
        assert reports[-1].verdict is Verdict.VIOLATED
        assert first in checker.blackholes
        assert "blackholes" in reports[-1].detail

    def test_custom_checker_sees_every_sync(self):
        topo = random_topology(random.Random(2))
        verifier = SubspaceVerifier(topo, LAYOUT)
        seen = []

        class Recorder(Checker):
            def on_model_update(self, deltas, new_synced, model):
                seen.extend(new_synced)
                return VerificationReport("rec", Verdict.UNKNOWN)

        verifier.add_checker(Recorder())
        for device in topo.switches():
            verifier.receive(device, [])
        assert seen == topo.switches()
