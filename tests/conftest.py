"""Shared fixtures, seeding, and strategy helpers for the test suite.

All randomized tests derive their randomness from one pytest option::

    pytest --repro-seed 4242

An autouse fixture reseeds the global :mod:`random` module per test from
``(--repro-seed, test nodeid)``, and failing tests print the seed so any
failure reproduces with the printed value.  Tests that need their own
generator call :func:`case_rng`, which mixes the base seed in the same
way.
"""

import random
import zlib
from typing import Dict, List

import pytest
from hypothesis import strategies as st

from repro.dataplane.rule import DROP, Rule
from repro.dataplane.update import RuleUpdate, UpdateOp
from repro.headerspace.fields import HeaderLayout, dst_only_layout
from repro.headerspace.match import Match, Pattern

DEFAULT_SEED = 1234
_base_seed = DEFAULT_SEED


def pytest_addoption(parser):
    parser.addoption(
        "--repro-seed",
        type=int,
        default=DEFAULT_SEED,
        help="base seed for all randomized tests (printed on failure)",
    )


def pytest_configure(config):
    global _base_seed
    _base_seed = config.getoption("--repro-seed")


def base_seed() -> int:
    """The --repro-seed value of the current run."""
    return _base_seed


def case_rng(case_seed: int = 0) -> random.Random:
    """A fresh generator mixing ``--repro-seed`` with a per-case seed.

    Property tests drawing a case index from hypothesis pass it here, so
    one CLI option reseeds every randomized test in the suite.
    """
    return random.Random((_base_seed << 32) ^ (case_seed & 0xFFFFFFFF))


def _seed_for(nodeid: str) -> int:
    return (_base_seed << 32) ^ zlib.crc32(nodeid.encode("utf-8"))


@pytest.fixture(autouse=True)
def _reseed_global_random(request):
    """Reseed the global random module per test, reproducibly."""
    seed = _seed_for(request.node.nodeid)
    state = random.getstate()
    random.seed(seed)
    yield
    random.setstate(state)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        report.sections.append(
            (
                "repro seed",
                f"--repro-seed {_base_seed} "
                f"(this test's derived seed: {_seed_for(item.nodeid)})",
            )
        )


def random_rule_strategy(layout: HeaderLayout, actions: List[int], max_priority=6):
    """Hypothesis strategy producing well-behaved rules for a small layout."""
    width = layout.field("dst").width

    def make_prefix(value, length, priority, action):
        return Rule(priority, Match.dst_prefix(value, length, layout), action)

    def make_suffix(value, length, priority, action):
        return Rule(
            priority, Match({"dst": Pattern.suffix(value, length, width)}), action
        )

    prefix_rules = st.builds(
        make_prefix,
        st.integers(0, (1 << width) - 1),
        st.integers(0, width),
        st.integers(0, max_priority),
        st.sampled_from(actions),
    )
    suffix_rules = st.builds(
        make_suffix,
        st.integers(0, (1 << width) - 1),
        st.integers(0, width),
        st.integers(0, max_priority),
        st.sampled_from(actions),
    )
    return st.one_of(prefix_rules, suffix_rules)


def assert_model_matches_snapshot(model, snapshot, layout):
    """Check R ~ M by exhaustive header enumeration (small layouts only)."""
    for header in range(layout.universe_size):
        values = layout.unflatten(header)
        assignment = {}
        for name in layout.field_names():
            assignment.update(dict(layout.bits_of(name, values[name])))
        expected = snapshot.behavior(values)
        actual = model.behavior(assignment)
        assert actual == expected, (
            f"header {values}: model {actual} != snapshot {expected}"
        )
