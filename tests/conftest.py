"""Shared fixtures and strategy helpers for the test suite."""

from typing import Dict, List

import pytest
from hypothesis import strategies as st

from repro.dataplane.rule import DROP, Rule
from repro.dataplane.update import RuleUpdate, UpdateOp
from repro.headerspace.fields import HeaderLayout, dst_only_layout
from repro.headerspace.match import Match, Pattern


def random_rule_strategy(layout: HeaderLayout, actions: List[int], max_priority=6):
    """Hypothesis strategy producing well-behaved rules for a small layout."""
    width = layout.field("dst").width

    def make_prefix(value, length, priority, action):
        return Rule(priority, Match.dst_prefix(value, length, layout), action)

    def make_suffix(value, length, priority, action):
        return Rule(
            priority, Match({"dst": Pattern.suffix(value, length, width)}), action
        )

    prefix_rules = st.builds(
        make_prefix,
        st.integers(0, (1 << width) - 1),
        st.integers(0, width),
        st.integers(0, max_priority),
        st.sampled_from(actions),
    )
    suffix_rules = st.builds(
        make_suffix,
        st.integers(0, (1 << width) - 1),
        st.integers(0, width),
        st.integers(0, max_priority),
        st.sampled_from(actions),
    )
    return st.one_of(prefix_rules, suffix_rules)


def assert_model_matches_snapshot(model, snapshot, layout):
    """Check R ~ M by exhaustive header enumeration (small layouts only)."""
    for header in range(layout.universe_size):
        values = layout.unflatten(header)
        assignment = {}
        for name in layout.field_names():
            assignment.update(dict(layout.bits_of(name, values[name])))
        expected = snapshot.behavior(values)
        actual = model.behavior(assignment)
        assert actual == expected, (
            f"header {values}: model {actual} != snapshot {expected}"
        )
