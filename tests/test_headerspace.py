"""Tests for header layouts, matches and the interval algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.predicate import PredicateEngine
from repro.errors import HeaderSpaceError
from repro.headerspace.fields import (
    HeaderLayout,
    dst_only_layout,
    dst_src_layout,
    five_tuple_layout,
)
from repro.headerspace.intervals import IntervalSet, ternary_to_intervals
from repro.headerspace.match import Match, MatchCompiler, Pattern

WIDTH = 8
UNIVERSE = 1 << WIDTH

interval_sets = st.lists(
    st.tuples(st.integers(0, UNIVERSE - 1), st.integers(0, UNIVERSE - 1)).map(
        lambda t: (min(t), max(t))
    ),
    max_size=5,
).map(IntervalSet)


def as_set(iset):
    out = set()
    for lo, hi in iset:
        out.update(range(lo, hi + 1))
    return out


class TestLayout:
    def test_offsets_and_total(self):
        layout = HeaderLayout([("dst", 16), ("src", 8)])
        assert layout.total_bits == 24
        assert layout.offset("dst") == 0
        assert layout.offset("src") == 16

    def test_flatten_roundtrip(self):
        layout = dst_src_layout(8, 4)
        values = {"dst": 0xAB, "src": 0x5}
        header = layout.flatten(values)
        assert header == (0xAB << 4) | 0x5
        assert layout.unflatten(header) == values

    def test_flatten_range_check(self):
        layout = dst_only_layout(4)
        with pytest.raises(HeaderSpaceError):
            layout.flatten({"dst": 16})

    def test_unknown_field(self):
        layout = dst_only_layout(8)
        with pytest.raises(HeaderSpaceError):
            layout.offset("nope")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(HeaderSpaceError):
            HeaderLayout([("a", 4), ("a", 4)])

    def test_empty_layout_rejected(self):
        with pytest.raises(HeaderSpaceError):
            HeaderLayout([])

    def test_five_tuple(self):
        layout = five_tuple_layout(8)
        assert layout.field_names() == ("dst", "src", "proto", "dport")
        assert layout.total_bits == 8 + 8 + 2 + 8

    def test_bits_of(self):
        layout = dst_only_layout(4)
        assert layout.bits_of("dst", 0b1010) == [
            (0, True),
            (1, False),
            (2, True),
            (3, False),
        ]


class TestIntervalSet:
    def test_normalisation_merges_adjacent(self):
        s = IntervalSet([(0, 3), (4, 7), (10, 12)])
        assert s.intervals == ((0, 7), (10, 12))

    def test_cardinality_and_contains(self):
        s = IntervalSet([(2, 4), (8, 8)])
        assert s.cardinality() == 4
        assert s.contains(3)
        assert s.contains(8)
        assert not s.contains(5)
        assert not s.contains(9)

    @given(interval_sets, interval_sets)
    @settings(max_examples=60, deadline=None)
    def test_algebra_matches_sets(self, a, b):
        sa, sb = as_set(a), as_set(b)
        assert as_set(a.union(b)) == sa | sb
        assert as_set(a.intersection(b)) == sa & sb
        assert as_set(a.difference(b)) == sa - sb

    @given(interval_sets)
    @settings(max_examples=40, deadline=None)
    def test_complement(self, a):
        comp = a.complement(UNIVERSE)
        assert as_set(comp) == set(range(UNIVERSE)) - as_set(a)
        assert a.union(comp) == IntervalSet.universe(UNIVERSE)

    def test_covers(self):
        outer = IntervalSet([(0, 10)])
        inner = IntervalSet([(2, 5), (7, 9)])
        assert outer.covers(inner)
        assert not inner.covers(outer)

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            IntervalSet.empty().sample()


class TestTernaryToIntervals:
    def test_prefix_is_one_interval(self):
        # 0b10?? → [8, 11]
        assert ternary_to_intervals(0b1000, 0b1100, 4) == [(8, 11)]

    def test_full_wildcard(self):
        assert ternary_to_intervals(0, 0, 4) == [(0, 15)]

    def test_suffix_explodes(self):
        # match low bit == 1 in a 4-bit field: 8 singleton intervals
        ivals = ternary_to_intervals(1, 1, 4)
        assert len(ivals) == 8
        assert all(lo == hi for lo, hi in ivals)
        assert {lo for lo, _ in ivals} == {1, 3, 5, 7, 9, 11, 13, 15}

    def test_cap_enforced(self):
        with pytest.raises(ValueError):
            ternary_to_intervals(1, 1, 12, max_intervals=100)

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=60, deadline=None)
    def test_semantics(self, value, mask):
        ivals = IntervalSet(ternary_to_intervals(value, mask, 4))
        expected = {x for x in range(16) if x & mask == value & mask}
        assert as_set(ivals) == expected


class TestPattern:
    def test_exact(self):
        p = Pattern.exact(5, 4)
        assert p.matches(5)
        assert not p.matches(4)

    def test_prefix(self):
        p = Pattern.prefix(0b1010, 2, 4)  # matches 10??
        assert p.matches(0b1000)
        assert p.matches(0b1011)
        assert not p.matches(0b0100)

    def test_zero_length_prefix_matches_all(self):
        p = Pattern.prefix(0, 0, 4)
        assert all(p.matches(v) for v in range(16))

    def test_suffix(self):
        p = Pattern.suffix(0b11, 2, 4)
        assert p.matches(0b0111)
        assert p.matches(0b1011)
        assert not p.matches(0b0110)

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=50, deadline=None)
    def test_range_cover(self, a, b):
        lo, hi = min(a, b), max(a, b)
        p = Pattern.range(lo, hi, 4)
        for v in range(16):
            assert p.matches(v) == (lo <= v <= hi)

    def test_bad_range(self):
        with pytest.raises(HeaderSpaceError):
            Pattern.range(5, 3, 4)

    def test_bad_prefix_length(self):
        with pytest.raises(HeaderSpaceError):
            Pattern.prefix(0, 9, 8)


class TestMatch:
    def setup_method(self):
        self.layout = dst_src_layout(4, 4)
        self.engine = PredicateEngine(self.layout.total_bits)

    def _semantics_agree(self, match):
        pred = match.to_predicate(self.engine, self.layout)
        iset = match.to_interval_set(self.layout)
        for header in range(self.layout.universe_size):
            values = self.layout.unflatten(header)
            expected = match.matches(values)
            bits = {}
            for name in self.layout.field_names():
                bits.update(
                    dict(self.layout.bits_of(name, values[name]))
                )
            assert pred.evaluate(bits) == expected, (header, match)
            assert iset.contains(header) == expected, (header, match)

    def test_wildcard(self):
        m = Match.wildcard()
        assert m.is_wildcard
        assert m.to_predicate(self.engine, self.layout).is_true
        assert m.to_interval_set(self.layout) == IntervalSet.universe(256)

    def test_dst_prefix_semantics(self):
        self._semantics_agree(Match.dst_prefix(0b1000, 2, self.layout))

    def test_exact_two_fields(self):
        self._semantics_agree(Match.exact(self.layout, dst=3, src=7))

    def test_src_only_forces_interval_expansion(self):
        m = Match({"src": Pattern.prefix(0b10, 2, 4)})
        iset = m.to_interval_set(self.layout)
        assert len(iset) == 16  # one run per dst value
        self._semantics_agree(m)

    def test_suffix_match_semantics(self):
        self._semantics_agree(Match({"dst": Pattern.suffix(0b1, 1, 4)}))

    def test_range_match_semantics(self):
        self._semantics_agree(Match({"dst": Pattern.range(3, 11, 4)}))

    def test_match_equality_and_hash(self):
        a = Match.dst_prefix(4, 2, self.layout)
        b = Match.dst_prefix(4, 2, self.layout)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Match.dst_prefix(4, 3, self.layout)

    def test_matches_header(self):
        m = Match.exact(self.layout, dst=2)
        header = self.layout.flatten({"dst": 2, "src": 9})
        assert m.matches_header(header, self.layout)

    def test_compiler_memoizes(self):
        compiler = MatchCompiler(self.engine, self.layout)
        m = Match.dst_prefix(4, 2, self.layout)
        p1 = compiler.compile(m)
        ops_before = self.engine.metrics.total
        p2 = compiler.compile(Match.dst_prefix(4, 2, self.layout))
        assert p1 == p2
        assert self.engine.metrics.total == ops_before
        assert len(compiler) == 1
