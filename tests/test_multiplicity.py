"""Tests for anycast / multicast / coverage early detection (Appendix D.2)."""

import pytest

from repro.results import Verdict
from repro.ce2d.verifier import SubspaceVerifier
from repro.dataplane.rule import DROP, Rule, ecmp
from repro.dataplane.update import insert
from repro.headerspace.fields import dst_only_layout
from repro.headerspace.match import Match
from repro.network.topology import Topology
from repro.spec.requirement import Multiplicity, requirement

LAYOUT = dst_only_layout(4)


def anycast_topology():
    r"""A diamond with two destinations:

        src → a → d1 (owns the space)
            ↘ b → d2 (owns the space)
    """
    topo = Topology()
    src = topo.add_device("src")
    a = topo.add_device("a")
    b = topo.add_device("b")
    d1 = topo.add_external("d1", prefixes=[(0, 0)])
    d2 = topo.add_external("d2", prefixes=[(0, 0)])
    topo.add_link(src, a)
    topo.add_link(src, b)
    topo.add_link(a, d1)
    topo.add_link(b, d2)
    return topo, src, a, b, d1, d2


def fwd(device, target):
    return insert(device, Rule(1, Match.wildcard(), target))


class TestAnycast:
    def _verifier(self, topo):
        req = requirement(
            "anycast",
            topo,
            LAYOUT,
            Match.wildcard(),
            ["src"],
            "src . >",
            Multiplicity.ANYCAST,
        )
        return SubspaceVerifier(topo, LAYOUT, requirements=[req])

    def test_exactly_one_destination_satisfies(self):
        topo, src, a, b, d1, d2 = anycast_topology()
        v = self._verifier(topo)
        v.receive(src, [fwd(src, a)])
        v.receive(a, [fwd(a, d1)])
        reports = v.receive(b, [])  # b drops: d2 unreachable
        assert reports[0].verdict is Verdict.SATISFIED

    def test_zero_destinations_violates_early(self):
        topo, src, a, b, d1, d2 = anycast_topology()
        v = self._verifier(topo)
        reports = v.receive(src, [])  # src drops everything
        assert reports[0].verdict is Verdict.VIOLATED

    def test_two_destinations_violates_when_converged(self):
        topo, src, a, b, d1, d2 = anycast_topology()
        v = self._verifier(topo)
        v.receive(src, [insert(src, Rule(1, Match.wildcard(), ecmp(a, b)))])
        v.receive(a, [fwd(a, d1)])
        reports = v.receive(b, [fwd(b, d2)])
        assert reports[0].verdict is Verdict.VIOLATED

    def test_unknown_while_converging(self):
        topo, src, a, b, d1, d2 = anycast_topology()
        v = self._verifier(topo)
        reports = v.receive(src, [fwd(src, a)])
        assert reports[0].verdict is Verdict.UNKNOWN


class TestMulticast:
    def _verifier(self, topo):
        req = requirement(
            "multicast",
            topo,
            LAYOUT,
            Match.wildcard(),
            ["src"],
            "src . >",
            Multiplicity.MULTICAST,
        )
        return SubspaceVerifier(topo, LAYOUT, requirements=[req])

    def test_all_destinations_satisfies(self):
        topo, src, a, b, d1, d2 = anycast_topology()
        v = self._verifier(topo)
        v.receive(src, [insert(src, Rule(1, Match.wildcard(), ecmp(a, b)))])
        v.receive(a, [fwd(a, d1)])
        reports = v.receive(b, [fwd(b, d2)])
        assert reports[0].verdict is Verdict.SATISFIED

    def test_missing_destination_violates_early(self):
        topo, src, a, b, d1, d2 = anycast_topology()
        v = self._verifier(topo)
        # src forwards only toward a: d2's accepting node becomes
        # unreachable immediately — early violation before a/b report.
        reports = v.receive(src, [fwd(src, a)])
        assert reports[0].verdict is Verdict.VIOLATED


class TestCoverOnEcmp:
    def test_cover_all_redundant_paths(self):
        """'All redundant shortest paths should be available' (App. B)."""
        topo, src, a, b, d1, d2 = anycast_topology()
        req = requirement(
            "cover-redundant",
            topo,
            LAYOUT,
            Match.wildcard(),
            ["src"],
            "cover (src [a|b] >)",
        )
        v = SubspaceVerifier(topo, LAYOUT, requirements=[req])
        # ECMP over both branches covers the path set.
        v.receive(src, [insert(src, Rule(1, Match.wildcard(), ecmp(a, b)))])
        v.receive(a, [fwd(a, d1)])
        reports = v.receive(b, [fwd(b, d2)])
        assert reports[0].verdict is Verdict.SATISFIED

    def test_single_path_breaks_cover(self):
        topo, src, a, b, d1, d2 = anycast_topology()
        req = requirement(
            "cover-redundant",
            topo,
            LAYOUT,
            Match.wildcard(),
            ["src"],
            "cover (src [a|b] >)",
        )
        v = SubspaceVerifier(topo, LAYOUT, requirements=[req])
        reports = v.receive(src, [fwd(src, a)])
        assert reports[0].verdict is Verdict.VIOLATED
        assert "misses" in reports[0].detail
