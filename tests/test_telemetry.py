"""Tests for the unified telemetry subsystem (repro.telemetry).

Covers the registry (get-or-create, snapshot/merge), the tracer (span
nesting, manual epoch-style spans, the re-entrant Stopwatch), exporters
(JSONL round-trip, table rendering), the deprecation shims over the old
stats/result API, and an end-to-end CLI smoke test of ``--telemetry``.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.telemetry import (
    DISABLED,
    JsonLinesExporter,
    MetricsRegistry,
    OpMetrics,
    PhaseBreakdown,
    Stopwatch,
    TableExporter,
    Telemetry,
    TelemetryConfig,
    Tracer,
    read_jsonl,
)

pytestmark = pytest.mark.telemetry


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_value_reads_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7)
        assert reg.value("c") == 3
        assert reg.value("g") == 7
        assert reg.value("missing", default=-1) == -1

    def test_snapshot_is_plain_json_safe_dict(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h").observe(0.25)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["counters"]["c"] == 2
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_snapshot_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("ops").inc(5)
        b.counter("ops").inc(7)
        b.counter("only_b").inc(1)
        a.histogram("h").observe(0.002)
        b.histogram("h").observe(0.002)
        a.merge_snapshot(b.snapshot())
        assert a.value("ops") == 12
        assert a.value("only_b") == 1
        assert a.histogram("h").count == 2

    def test_merge_rejects_mismatched_histogram_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0))
        b.histogram("h", bounds=(1.0, 5.0)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge_snapshot(b.snapshot())

    def test_collectors_run_before_snapshot(self):
        reg = MetricsRegistry()
        reg.add_collector(lambda r: r.gauge("pulled").set(42))
        assert reg.snapshot()["gauges"]["pulled"] == 42

    def test_reset_zeroes_but_keeps_metrics(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(9)
        reg.reset()
        assert reg.value("c") == 0
        assert "c" in reg.snapshot()["counters"]


class TestTracer:
    def test_span_records_count_and_seconds(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        assert tracer.registry.value("span.work.count") == 1
        assert tracer.registry.value("span.work.seconds") >= 0

    def test_nesting_depth_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert outer.depth == 0 and outer.parent is None
        assert inner.depth == 1 and inner.parent == "outer"

    def test_manual_spans_for_epoch_lifecycles(self):
        tracer = Tracer()
        span = tracer.begin("epoch", epoch="e1")
        with tracer.span("check"):
            pass  # manual spans stay off the nesting stack
        tracer.end(span)
        assert span.finished
        assert span.attrs == {"epoch": "e1"}
        assert tracer.registry.value("span.epoch.count") == 1

    def test_ring_is_bounded_and_counts_drops(self):
        tracer = Tracer(max_spans=2)
        for _ in range(4):
            with tracer.span("s"):
                pass
        assert len(tracer.finished) <= 2
        assert tracer.registry.value("tracer.spans_dropped") >= 1

    def test_disabled_telemetry_spans_are_noops(self):
        tel = Telemetry(config=DISABLED)
        with tel.span("quiet") as span:
            assert span is None
        assert tel.registry.value("span.quiet.count") == 0
        # Counters stay live even when spans are off.
        tel.count("still.counted")
        assert tel.registry.value("still.counted") == 1


class TestStopwatch:
    def test_accumulates_across_windows(self):
        sw = Stopwatch()
        with sw.measure():
            pass
        first = sw.elapsed
        with sw.measure():
            pass
        assert sw.elapsed >= first

    def test_reentrant_measure_counts_outer_window_once(self):
        sw = Stopwatch()
        with sw.measure():
            with sw.measure():  # the historical bug double-counted this
                pass
        with sw.measure():
            pass
        # Nested scopes accumulate exactly one outer window, so two
        # top-level windows mean elapsed < 2x the longest one plus slack;
        # the precise regression check: depth returns to zero and a fresh
        # start() is accepted.
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset_while_running_raises(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.reset()
        sw.stop()
        assert sw.reset() >= 0


class TestViews:
    def test_op_metrics_snapshot_and_diff(self):
        metrics = OpMetrics(MetricsRegistry())
        metrics.record_conjunction()
        metrics.record_disjunction(2)
        before = metrics.snapshot()
        metrics.record_negation()
        metrics.bump("atom_ops", 3)
        delta = metrics.diff(before)
        assert delta.negations == 1
        assert delta.conjunctions == 0
        assert delta.extra["atom_ops"] == 3
        assert metrics.total == 4

    def test_phase_breakdown_from_registry(self):
        reg = MetricsRegistry()
        reg.counter("span.mr2.map.seconds").inc(1.5)
        reg.counter("span.mr2.apply.seconds").inc(0.5)
        reg.counter("mr2.blocks").inc(3)
        b = PhaseBreakdown.from_registry(reg)
        assert b.map_seconds == 1.5
        assert b.total_seconds == 2.0
        assert b.blocks == 3


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        tel = Telemetry()
        with tel.span("phase"):
            tel.count("ops", 4)
        path = str(tmp_path / "out.jsonl")
        lines = JsonLinesExporter(path).export(tel, label="unit")
        records = read_jsonl(path)
        assert len(records) == lines
        assert records[0] == {"record": "meta", "label": "unit", "version": 1}
        by_kind = {}
        for rec in records:
            by_kind.setdefault(rec["record"], []).append(rec)
        counters = {r["name"]: r["value"] for r in by_kind["counter"]}
        assert counters["ops"] == 4
        assert counters["span.phase.count"] == 1
        assert any(s["name"] == "phase" for s in by_kind["span"])

    def test_jsonl_appends_reports(self, tmp_path):
        from repro.results import Verdict, VerificationReport

        report = VerificationReport("r1", Verdict.SATISFIED, epoch="e")
        path = str(tmp_path / "out.jsonl")
        JsonLinesExporter(path).export(Telemetry(), reports=[report])
        records = read_jsonl(path)
        reps = [r for r in records if r["record"] == "report"]
        assert reps[0]["requirement"] == "r1"
        assert reps[0]["verdict"] == "satisfied"

    def test_table_renders_all_metric_kinds(self):
        tel = Telemetry()
        tel.count("c", 2)
        tel.registry.gauge("g").set(1)
        tel.registry.histogram("h").observe(0.1)
        text = TableExporter().render(tel)
        for name in ("c", "g", "h"):
            assert name in text


class TestShimsRemoved:
    """The PR 1 deprecated paths were deleted after two PR cycles."""

    def test_old_stats_module_gone(self):
        with pytest.raises(ImportError):
            import repro.core.stats  # noqa: F401

    def test_old_results_module_gone(self):
        with pytest.raises(ImportError):
            import repro.ce2d.results  # noqa: F401

    def test_engine_counter_gone(self):
        from repro.bdd.predicate import PredicateEngine

        engine = PredicateEngine(4)
        with pytest.raises(AttributeError):
            engine.counter  # noqa: B018
        # The stable accessor keeps counting.
        _ = engine.variable(0) & engine.variable(1)
        assert engine.metrics.conjunctions == 1

    def test_baseline_counters_gone(self):
        from repro.baselines.apkeep import APKeepVerifier
        from repro.baselines.deltanet import DeltaNetVerifier
        from repro.headerspace.fields import dst_only_layout

        layout = dst_only_layout(4)
        for verifier in (
            APKeepVerifier([0], layout),
            DeltaNetVerifier([0], layout),
        ):
            with pytest.raises(AttributeError):
                verifier.counter  # noqa: B018


class TestEndToEnd:
    def test_flash_snapshot_spans_bdd_mr2_and_epochs(self):
        """One registry snapshot covers BDD ops, MR2 phases and epochs."""
        from repro.fibgen.shortest_path import std_fib
        from repro.flash import Flash
        from repro.headerspace.fields import dst_only_layout
        from repro.network.generators import internet2

        topo = internet2()
        for switch in list(topo.switches()):
            host = topo.add_external(f"h_{topo.name_of(switch)}")
            topo.add_link(switch, host)
        layout = dst_only_layout(6)
        flash = Flash(topo, layout, check_loops=True)
        from repro.dataplane.trace import inserts_only

        flash.verify_offline(inserts_only(std_fib(topo, layout)))
        snap = flash.telemetry_snapshot()
        counters = snap["metrics"]["counters"]
        gauges = snap["metrics"]["gauges"]
        assert counters["predicate.ops.conjunction"] > 0
        assert counters["mr2.blocks"] > 0
        assert counters["span.mr2.map.seconds"] >= 0
        assert counters["ce2d.epoch.opened"] == 1
        assert counters["span.ce2d.check.count"] > 0
        assert any(k.startswith("ce2d.verdicts.") for k in counters)
        assert gauges["bdd.nodes"] > 0
        assert gauges["bdd.apply.calls"] > 0

    def test_cli_verify_telemetry_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        trace = str(tmp_path / "trace.jsonl")
        out = str(tmp_path / "telemetry.jsonl")
        assert main([
            "generate", "--topology", "internet2", "--dst-bits", "6",
            "--out", trace,
        ]) == 0
        assert main([
            "verify", "--topology", "internet2", "--dst-bits", "6",
            "--trace", trace, "--telemetry", out,
        ]) == 0
        records = read_jsonl(out)  # every line parses as JSON
        kinds = {r["record"] for r in records}
        assert {"meta", "counter", "gauge", "span"} <= kinds
        names = {r.get("name") for r in records}
        assert "predicate.ops.conjunction" in names
        assert "span.mr2.map.seconds" in names
