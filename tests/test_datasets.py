"""Tests for dataset persistence (topology/layout/bundle round trips)."""

import pytest

from repro.datasets import (
    DatasetBundle,
    layout_from_dict,
    layout_to_dict,
    load_bundle,
    load_topology,
    save_bundle,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.dataplane.trace import inserts_only
from repro.errors import ReproError
from repro.fibgen.shortest_path import std_fib
from repro.headerspace.fields import dst_only_layout, dst_src_layout
from repro.network.generators import fabric, internet2


class TestTopologyRoundtrip:
    def test_simple_roundtrip(self):
        topo = internet2()
        restored = topology_from_dict(topology_to_dict(topo))
        assert restored.num_devices == topo.num_devices
        assert restored.links() == topo.links()
        assert restored.name_of(0) == topo.name_of(0)

    def test_labels_and_prefixes_survive(self):
        topo = fabric(pods=2, tors_per_pod=2, fabrics_per_pod=2, spines_per_plane=1)
        layout = dst_only_layout(8)
        std_fib(topo, layout)  # attaches rack prefixes as tuples
        restored = topology_from_dict(topology_to_dict(topo))
        for rack in topo.externals():
            original = topo.device(rack).label("prefixes")
            loaded = restored.device(rack).label("prefixes")
            assert loaded == original
            assert all(isinstance(p, tuple) for p in loaded)

    def test_file_roundtrip(self, tmp_path):
        topo = internet2()
        path = str(tmp_path / "topo.json")
        save_topology(path, topo)
        assert load_topology(path).links() == topo.links()

    def test_bad_version_rejected(self):
        payload = topology_to_dict(internet2())
        payload["version"] = 99
        with pytest.raises(ReproError):
            topology_from_dict(payload)

    def test_non_dense_ids_rejected(self):
        payload = topology_to_dict(internet2())
        payload["devices"][0]["id"] = 42
        with pytest.raises(ReproError):
            topology_from_dict(payload)


class TestLayoutRoundtrip:
    def test_roundtrip(self):
        layout = dst_src_layout(12, 6)
        restored = layout_from_dict(layout_to_dict(layout))
        assert restored.field_names() == layout.field_names()
        assert restored.total_bits == layout.total_bits


class TestBundles:
    def _make(self, tmp_path):
        topo = fabric(pods=2, tors_per_pod=2, fabrics_per_pod=2, spines_per_plane=1)
        layout = dst_only_layout(8)
        updates = inserts_only(std_fib(topo, layout))
        directory = str(tmp_path / "bundle")
        save_bundle(
            directory, "mini-fabric", topo, layout, updates,
            metadata={"source": "generated"},
        )
        return directory, topo, layout, updates

    def test_save_load_roundtrip(self, tmp_path):
        directory, topo, layout, updates = self._make(tmp_path)
        bundle = load_bundle(directory)
        assert bundle.name == "mini-fabric"
        assert bundle.topology.num_devices == topo.num_devices
        assert bundle.layout.total_bits == layout.total_bits
        assert list(bundle.updates()) == updates
        assert bundle.update_count() == len(updates)
        assert bundle.metadata["source"] == "generated"

    def test_bundle_verifies_with_flash(self, tmp_path):
        from repro.flash import Flash

        directory, *_ = self._make(tmp_path)
        bundle = load_bundle(directory)
        flash = Flash(bundle.topology, bundle.layout, check_loops=True)
        flash.verify_offline(list(bundle.updates()))
        assert flash.first_violation() is None

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ReproError):
            load_bundle(str(tmp_path))
