"""Tests for the discrete-event simulator and the OpenR-like routing stack."""

import pytest

from repro.ce2d.dispatcher import CE2DDispatcher
from repro.results import Verdict
from repro.ce2d.verifier import SubspaceVerifier
from repro.dataplane.rule import next_hops_of
from repro.errors import SimulationError
from repro.headerspace.fields import dst_only_layout
from repro.network.generators import internet2, line, ring
from repro.routing.events import EventLoop
from repro.routing.linkstate import KvStore, LinkState, link_key
from repro.routing.openr import OpenRSimulation

LAYOUT = dst_only_layout(8)


class TestEventLoop:
    def test_ordering(self):
        loop = EventLoop()
        order = []
        loop.schedule(0.2, lambda: order.append("b"))
        loop.schedule(0.1, lambda: order.append("a"))
        loop.schedule(0.3, lambda: order.append("c"))
        loop.run()
        assert order == ["a", "b", "c"]
        assert loop.now == pytest.approx(0.3)

    def test_fifo_for_same_time(self):
        loop = EventLoop()
        order = []
        loop.schedule(0.1, lambda: order.append(1))
        loop.schedule(0.1, lambda: order.append(2))
        loop.run()
        assert order == [1, 2]

    def test_run_until(self):
        loop = EventLoop()
        fired = []
        loop.schedule(0.1, lambda: fired.append(1))
        loop.schedule(0.5, lambda: fired.append(2))
        loop.run(until=0.2)
        assert fired == [1]
        assert loop.now == pytest.approx(0.2)
        loop.run()
        assert fired == [1, 2]

    def test_nested_scheduling(self):
        loop = EventLoop()
        fired = []

        def outer():
            fired.append("outer")
            loop.schedule(0.1, lambda: fired.append("inner"))

        loop.schedule(0.1, outer)
        loop.run()
        assert fired == ["outer", "inner"]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        loop = EventLoop()
        loop.schedule(0.5, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.schedule_at(0.1, lambda: None)


class TestKvStore:
    def test_merge_by_version(self):
        kv = KvStore()
        kv.seed([(0, 1)])
        assert kv.is_up((0, 1))
        assert kv.merge((0, 1), LinkState(1, False))
        assert not kv.is_up((0, 1))
        assert not kv.merge((0, 1), LinkState(0, True))  # stale
        assert not kv.is_up((0, 1))

    def test_epoch_tag_changes_with_versions(self):
        kv = KvStore()
        kv.seed([(0, 1), (1, 2)])
        t0 = kv.epoch_tag()
        kv.merge((0, 1), LinkState(1, False))
        t1 = kv.epoch_tag()
        assert t0 != t1

    def test_equal_stores_equal_tags(self):
        a, b = KvStore(), KvStore()
        a.seed([(0, 1)])
        b.seed([(0, 1)])
        assert a.epoch_tag() == b.epoch_tag()
        a.merge((0, 1), LinkState(3, False))
        b.merge((0, 1), LinkState(3, False))
        assert a.epoch_tag() == b.epoch_tag()

    def test_link_key_canonical(self):
        assert link_key(3, 1) == (1, 3) == link_key(1, 3)

    def test_multi_hash_tags(self):
        """Footnote 6: concatenated salted hashes reduce collision odds."""
        kv = KvStore()
        kv.seed([(0, 1), (1, 2)])
        single = kv.epoch_tag()
        double = kv.epoch_tag(num_hashes=2)
        assert double.startswith(single)
        assert len(double) > len(single)
        other = KvStore()
        other.seed([(0, 1), (1, 2)])
        assert other.epoch_tag(num_hashes=2) == double


class TestOpenRSimulation:
    def test_bootstrap_converges_and_tags_agree(self):
        topo = internet2()
        sim = OpenRSimulation(topo, LAYOUT, seed=1)
        sim.bootstrap()
        sim.run()
        devices = {b.device for b in sim.batches}
        assert devices == set(topo.switches())
        tags = {b.tag for b in sim.batches}
        assert len(tags) == 1  # all computed from the same network state

    def test_bootstrap_fibs_route_correctly(self):
        topo = line(4)
        sim = OpenRSimulation(topo, LAYOUT, seed=1)
        sim.bootstrap()
        sim.run()
        # Follow node 0's FIB to node 3's prefix owner hop by hop.
        dest = next(d for d in sim.destinations if d.owner == 3)
        current = 0
        for _ in range(5):
            if current == 3:
                break
            rule = sim.nodes[current].fib[dest]
            current = next_hops_of(rule.action)[0]
        assert current == 3

    def test_link_failure_triggers_new_epoch_and_reroute(self):
        topo = ring(4)
        sim = OpenRSimulation(topo, LAYOUT, seed=1)
        sim.bootstrap()
        sim.run()
        bootstrap_tag = sim.batches[0].tag
        sim.fail_link(0, 1, at=sim.loop.now + 1.0)
        sim.run()
        new_tags = {b.tag for b in sim.batches if b.tag != bootstrap_tag}
        assert len(new_tags) == 1
        # Node 0 now reaches node 1's prefix the long way (via 3).
        dest = next(d for d in sim.destinations if d.owner == 1)
        rule = sim.nodes[0].fib[dest]
        assert next_hops_of(rule.action)[0] == 3

    def test_dampened_node_sends_late(self):
        topo = ring(4)
        sim = OpenRSimulation(topo, LAYOUT, dampening={2: 60.0}, seed=1)
        sim.bootstrap()
        sim.run()
        late = [b for b in sim.batches if b.device == 2]
        early = [b for b in sim.batches if b.device != 2]
        assert late and early
        assert min(b.time for b in late) > max(b.time for b in early)
        assert min(b.time for b in late) >= 60.0

    def test_buggy_node_creates_loop(self):
        topo = internet2()
        buggy = topo.id_of("kans")
        sim = OpenRSimulation(topo, LAYOUT, buggy_nodes=[buggy], seed=1)
        sim.bootstrap()
        sim.run()
        # Feed the converged FIBs to a loop-checking verifier.
        verifier = SubspaceVerifier(topo, LAYOUT, check_loops=True)
        for batch in sim.batches:
            reports = verifier.receive(batch.device, batch.updates)
        final = verifier.first_deterministic()
        assert final is not None
        assert final.verdict is Verdict.VIOLATED

    def test_correct_network_is_loop_free(self):
        topo = internet2()
        sim = OpenRSimulation(topo, LAYOUT, seed=1)
        sim.bootstrap()
        sim.run()
        verifier = SubspaceVerifier(topo, LAYOUT, check_loops=True)
        for batch in sim.batches:
            reports = verifier.receive(batch.device, batch.updates)
        assert reports[0].verdict is Verdict.SATISFIED

    def test_unknown_link_rejected(self):
        topo = ring(4)
        sim = OpenRSimulation(topo, LAYOUT)
        with pytest.raises(SimulationError):
            sim.fail_link(0, 2, at=0.1)


class TestOpenRWithDispatcher:
    """End-to-end: simulation feeding CE2D through epoch dispatch."""

    def _run(self, sim, topo):
        dispatcher = CE2DDispatcher(
            lambda tag: SubspaceVerifier(topo, LAYOUT, epoch=tag, check_loops=True)
        )
        sim.add_collector(
            lambda when, device, tag, updates: dispatcher.receive(
                device, tag, updates, now=when
            )
        )
        return dispatcher

    def test_ce2d_no_false_loop_on_two_failures(self):
        """Figure 8's headline: CE2D reports no transient loops."""
        topo = internet2()
        sim = OpenRSimulation(topo, LAYOUT, seed=3)
        dispatcher = self._run(sim, topo)
        sim.bootstrap()
        sim.run()
        sim.fail_link_by_name("chic", "atla", at=sim.loop.now + 0.5)
        sim.fail_link_by_name("chic", "kans", at=sim.loop.now + 0.55)
        sim.run()
        violations = [
            r
            for r in dispatcher.deterministic_reports()
            if r.verdict is Verdict.VIOLATED
        ]
        assert violations == []

    def test_ce2d_detects_buggy_loop_before_dampened_node(self):
        """Figure 9's headline: the loop is reported long before 60 s."""
        topo = internet2()
        buggy = topo.id_of("kans")
        dampened = topo.id_of("seat")
        sim = OpenRSimulation(
            topo,
            LAYOUT,
            buggy_nodes=[buggy],
            dampening={dampened: 60.0},
            seed=5,
        )
        dispatcher = self._run(sim, topo)
        sim.bootstrap()
        sim.run()
        loops = [
            r
            for r in dispatcher.deterministic_reports()
            if r.verdict is Verdict.VIOLATED
        ]
        assert loops, "expected an early consistent loop report"
        assert min(r.time for r in loops) < 1.0  # far earlier than 60 s


class TestLinkEvents:
    def test_recovery_restores_shortest_path(self):
        topo = ring(4)
        sim = OpenRSimulation(topo, LAYOUT, seed=1)
        sim.bootstrap()
        sim.run()
        dest = next(d for d in sim.destinations if d.owner == 1)
        sim.fail_link(0, 1, at=sim.loop.now + 1.0)
        sim.run()
        assert next_hops_of(sim.nodes[0].fib[dest].action)[0] == 3
        sim.recover_link(0, 1, at=sim.loop.now + 1.0)
        sim.run()
        assert next_hops_of(sim.nodes[0].fib[dest].action)[0] == 1

    def test_partitioned_destination_removed_from_fib(self):
        topo = line(3)
        sim = OpenRSimulation(topo, LAYOUT, seed=1)
        sim.bootstrap()
        sim.run()
        dest = next(d for d in sim.destinations if d.owner == 2)
        assert dest in sim.nodes[0].fib
        sim.fail_link(1, 2, at=sim.loop.now + 1.0)
        sim.run()
        assert dest not in sim.nodes[0].fib  # node 2 unreachable → no rule

    def test_decision_debounce_coalesces_messages(self):
        """Two near-simultaneous events trigger one recomputation per node
        (the decision-delay debounce), not two."""
        topo = ring(4)
        sim = OpenRSimulation(topo, LAYOUT, seed=1, decision_delay=0.5)
        sim.bootstrap()
        sim.run()
        batches_before = len(sim.batches)
        sim.fail_link(0, 1, at=sim.loop.now + 0.1)
        sim.fail_link(2, 3, at=sim.loop.now + 0.101)
        sim.run()
        new_batches = [b for b in sim.batches[batches_before:]]
        per_device = {}
        for b in new_batches:
            per_device[b.device] = per_device.get(b.device, 0) + 1
        # With a long debounce each device recomputes exactly once.
        assert all(count == 1 for count in per_device.values()), per_device

    def test_two_events_two_epochs_when_debounce_short(self):
        topo = ring(4)
        sim = OpenRSimulation(topo, LAYOUT, seed=1, decision_delay=0.001)
        sim.bootstrap()
        sim.run()
        start_tags = {b.tag for b in sim.batches}
        sim.fail_link(0, 1, at=sim.loop.now + 1.0)
        sim.run()
        sim.fail_link(2, 3, at=sim.loop.now + 1.0)
        sim.run()
        tags = {b.tag for b in sim.batches} - start_tags
        assert len(tags) == 2


class TestWeightedLinks:
    def test_costs_steer_paths(self):
        """OSPF-style weights: an expensive direct link loses to a detour."""
        topo = ring(4)  # 0-1-2-3-0
        sim = OpenRSimulation(
            topo, LAYOUT, link_costs={(0, 1): 10}, seed=1
        )
        sim.bootstrap()
        sim.run()
        dest = next(d for d in sim.destinations if d.owner == 1)
        # 0 → 3 → 2 → 1 costs 3 < direct cost 10.
        assert next_hops_of(sim.nodes[0].fib[dest].action)[0] == 3

    def test_bad_cost_rejected(self):
        topo = ring(4)
        with pytest.raises(SimulationError):
            OpenRSimulation(topo, LAYOUT, link_costs={(0, 1): 0})
        with pytest.raises(SimulationError):
            OpenRSimulation(topo, LAYOUT, link_costs={(0, 2): 3})

    def test_unit_costs_unchanged(self):
        topo = ring(4)
        default = OpenRSimulation(topo, LAYOUT, seed=2)
        explicit = OpenRSimulation(
            topo, LAYOUT, link_costs={(0, 1): 1}, seed=2
        )
        for sim in (default, explicit):
            sim.bootstrap()
            sim.run()
        d0 = {(b.device, b.tag): len(b.updates) for b in default.batches}
        d1 = {(b.device, b.tag): len(b.updates) for b in explicit.batches}
        assert d0 == d1
