"""Engine-equivalence over the difftest corpus, plus import regressions.

The rebuilt BDD engine must be *observably identical* to the frozen
reference engine everywhere above the node encoding.  Two checks:

* every checked-in difftest scenario, modelled by the brute-force
  oracle, produces BDD-equal behavior / reachability / loop predicates
  whether the comparison engine runs on the new
  :class:`~repro.bdd.engine.BDD` or on
  :class:`~repro.bdd.reference.ReferenceBDD` (cross-engine equality via
  structural import into one probe engine);
* the full differential runner — whose shared comparison engine is the
  new BDD — still reports zero divergences on the corpus, i.e. verdicts
  derived through the new engine match the oracle's.

The remaining tests pin down the ``import_predicate`` contract: interned
self-import (no walk, no allocation), unique-table dedup on re-import,
and iterative traversal for predicates deeper than the recursion limit.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.bdd.predicate import PredicateEngine
from repro.bdd.reference import ReferenceBDD
from repro.difftest import DifferentialRunner
from repro.difftest.compare import view_from_oracle
from repro.difftest.corpus import load_scenario
from repro.difftest.oracle import ReferenceOracle

CORPUS_DIR = Path(__file__).parent / "corpus"
# Plain scenarios only — kind-tagged payloads (chaos, interleave) wrap a
# scenario in a recipe and are replayed by tests/test_corpus_replay.py.
CORPUS = sorted(
    path
    for path in CORPUS_DIR.glob("*.json")
    if json.loads(path.read_text(encoding="utf-8")).get("kind") is None
)


def oracle_view(scenario, engine: PredicateEngine):
    topology = scenario.build_topology()
    layout = scenario.build_layout()
    oracle = ReferenceOracle(topology, layout)
    oracle.process_updates(scenario.updates)
    return topology, view_from_oracle("oracle", engine, oracle)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_oracle_model_identical_on_both_engines(path):
    scenario = load_scenario(path)
    layout = scenario.build_layout()
    new_eng = PredicateEngine(layout.total_bits)
    ref_eng = PredicateEngine(layout.total_bits, bdd=ReferenceBDD(layout.total_bits))
    topology, new_view = oracle_view(scenario, new_eng)
    _, ref_view = oracle_view(scenario, ref_eng)
    probe = PredicateEngine(layout.total_bits)

    new_map = new_view.behavior_map()
    ref_map = ref_view.behavior_map()
    assert set(new_map) == set(ref_map)
    for device in new_map:
        assert set(new_map[device]) == set(ref_map[device]), f"device {device}"
        for action, pred in new_map[device].items():
            mirrored = probe.import_predicate(pred)
            expected = probe.import_predicate(ref_map[device][action])
            assert mirrored == expected, (
                f"device {device}, action {action!r}: engines disagree"
            )
            assert pred.sat_count() == ref_map[device][action].sat_count()

    for source in sorted(topology.switches()):
        new_reach = new_view.reach_predicate(topology, source)
        ref_reach = ref_view.reach_predicate(topology, source)
        assert probe.import_predicate(new_reach) == probe.import_predicate(
            ref_reach
        ), f"reachability from {source}"

    assert probe.import_predicate(
        new_view.loop_predicate(topology)
    ) == probe.import_predicate(ref_view.loop_predicate(topology))


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_runner_verdicts_clean_through_new_engine(path):
    """All five engines, diffed inside a new-BDD comparison engine."""
    result = DifferentialRunner().run(load_scenario(path))
    assert result.ok, f"divergences: {result.divergences}"


class TestImportPredicate:
    def test_self_import_returns_interned_handle_without_walking(self):
        eng = PredicateEngine(12)
        p = eng.cube([(0, True), (4, False)]) | eng.cube([(7, True)])
        before = eng.live_nodes
        again = eng.import_predicate(p)
        assert again is p, "self-import must return the interned handle"
        assert eng.live_nodes == before

    def test_shared_store_import_is_a_self_import(self):
        eng_a = PredicateEngine(12)
        eng_b = PredicateEngine(12, bdd=eng_a.bdd)
        p = eng_a.cube([(1, True), (2, True)])
        q = eng_b.import_predicate(p)
        assert q.node == p.node
        assert q.engine is eng_b

    def test_reimport_dedupes_through_unique_table(self):
        src = PredicateEngine(12)
        dst = PredicateEngine(12)
        p = src.cube([(0, True)]) ^ src.cube([(5, False), (9, True)])
        first = dst.import_predicate(p)
        allocated = dst.bdd.num_nodes
        second = dst.import_predicate(p)
        assert second == first
        assert dst.bdd.num_nodes == allocated, (
            "re-import must dedupe against existing nodes, not rebuild"
        )

    @pytest.mark.parametrize("direction", ["ref_to_new", "new_to_ref"])
    def test_deep_import_beyond_recursion_limit(self, direction):
        depth = sys.getrecursionlimit() + 200
        if direction == "ref_to_new":
            src = PredicateEngine(depth, bdd=ReferenceBDD(depth))
            dst = PredicateEngine(depth)
        else:
            src = PredicateEngine(depth)
            dst = PredicateEngine(depth, bdd=ReferenceBDD(depth))
        chain = src.cube([(i, bool(i % 2)) for i in range(depth)])
        imported = dst.import_predicate(chain)
        assert imported.node_count() == chain.node_count()
        if direction == "ref_to_new":  # new engine counts iteratively
            assert imported.sat_count() == 1
        # Round-trip back into the source engine: the import walk is
        # iterative in both directions, and the source can count models
        # no matter which engine it is backed by only when it is the new
        # one — the frozen reference counts recursively — so equality of
        # interned handles is the depth-safe correctness check.
        assert src.import_predicate(imported) is chain

    def test_import_preserves_function(self):
        src = PredicateEngine(10, bdd=ReferenceBDD(10))
        dst = PredicateEngine(10)
        p = (src.cube([(0, True), (3, True)]) | src.cube([(6, False)])) ^ (
            src.cube([(2, True)])
        )
        q = dst.import_predicate(p)
        assert q.sat_count() == p.sat_count()
        for m in range(64):
            assignment = {i: bool((m >> i) & 1) for i in range(10)}
            assert q.evaluate(assignment) == p.evaluate(assignment)
