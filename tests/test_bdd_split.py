"""Properties of the single-traversal split primitive and cofactor signatures.

``split(f, g)`` must agree with ``(f & g, f - g)`` on both engines for
arbitrary predicate pairs — it is the workhorse of the fast EC-table
apply path, so any divergence here silently corrupts models.  The
signature checks pin the soundness contract the apply path's O(1)
disjointness pruning relies on.
"""

import pytest

from repro.bdd.predicate import PredicateEngine
from repro.bdd.reference import ReferenceBDD

from .conftest import case_rng

NUM_VARS = 12


def fresh_engine(kind: str) -> PredicateEngine:
    if kind == "reference":
        return PredicateEngine(NUM_VARS, bdd=ReferenceBDD(NUM_VARS))
    return PredicateEngine(NUM_VARS)


def random_pred(engine: PredicateEngine, rng, max_cubes: int = 4):
    """A random disjunction of random partial cubes (may be ⊥ or ⊤)."""
    roll = rng.random()
    if roll < 0.05:
        return engine.false
    if roll < 0.10:
        return engine.true
    result = engine.false
    for _ in range(rng.randint(1, max_cubes)):
        literals = [
            (var, rng.random() < 0.5)
            for var in range(NUM_VARS)
            if rng.random() < 0.4
        ]
        result = result | engine.cube(literals)
    return result


@pytest.mark.parametrize("kind", ["fast", "reference"])
def test_split_matches_separate_applies_on_random_pairs(kind):
    engine = fresh_engine(kind)
    rng = case_rng(0x5197)
    for _ in range(300):
        f = random_pred(engine, rng)
        g = random_pred(engine, rng)
        inter, rest = f.split(g)
        assert inter == f & g
        assert rest == f - g
        # The two halves partition f.
        assert (inter | rest) == f
        assert (inter & rest).is_false


@pytest.mark.parametrize("kind", ["fast", "reference"])
def test_split_terminal_cases(kind):
    engine = fresh_engine(kind)
    rng = case_rng(0x5198)
    f = random_pred(engine, rng)
    while f.is_false or f.is_true:
        f = random_pred(engine, rng)
    assert engine.false.split(f) == (engine.false, engine.false)
    assert engine.true.split(f) == (f, ~f)
    assert f.split(engine.false) == (engine.false, f)
    assert f.split(engine.true) == (f, engine.false)
    assert f.split(f) == (f, engine.false)
    assert f.split(~f) == (engine.false, f)


def test_split_counts_one_conjunction_one_negation():
    engine = fresh_engine("fast")
    rng = case_rng(0x5199)
    f, g = random_pred(engine, rng), random_pred(engine, rng)
    before = engine.metrics.snapshot()
    f.split(g)
    delta = engine.metrics.diff(before)
    assert delta.conjunctions == 1
    assert delta.negations == 1
    assert delta.disjunctions == 0


def test_split_publishes_engine_stats():
    engine = fresh_engine("fast")
    rng = case_rng(0x519A)
    for _ in range(20):
        random_pred(engine, rng).split(random_pred(engine, rng))
    engine.registry.collect()
    assert engine.registry.value("bdd.split.calls") == 20


def test_split_survives_gc_and_table_rehash():
    """Stress the inlined unique-table probes across collections."""
    engine = PredicateEngine(NUM_VARS, gc_threshold=256)
    rng = case_rng(0x519B)
    for round_no in range(40):
        f, g = random_pred(engine, rng, 6), random_pred(engine, rng, 6)
        inter, rest = f.split(g)
        assert (inter | rest) == f
        if round_no % 10 == 9:
            engine.collect()


class TestSignature:
    def _engines(self):
        return [fresh_engine("fast"), fresh_engine("reference")]

    def test_disjoint_signatures_imply_disjoint_predicates(self):
        rng = case_rng(0x51C0)
        for engine in self._engines():
            for _ in range(200):
                f = random_pred(engine, rng)
                g = random_pred(engine, rng)
                if engine.signature(f) & engine.signature(g) == 0:
                    assert (f & g).is_false

    def test_signature_composes_over_disjunction(self):
        rng = case_rng(0x51C1)
        for engine in self._engines():
            for _ in range(100):
                f = random_pred(engine, rng)
                g = random_pred(engine, rng)
                assert engine.signature(f | g) == (
                    engine.signature(f) | engine.signature(g)
                )

    def test_signature_overapproximates_conjunction(self):
        rng = case_rng(0x51C2)
        for engine in self._engines():
            for _ in range(100):
                f = random_pred(engine, rng)
                g = random_pred(engine, rng)
                conj_sig = engine.signature(f & g)
                assert conj_sig & ~(
                    engine.signature(f) & engine.signature(g)
                ) == 0

    def test_terminals_and_horizon(self):
        for engine in self._engines():
            bits = min(engine.SIG_BITS, engine.num_vars)
            full = (1 << (1 << bits)) - 1
            assert engine.signature(engine.false) == 0
            assert engine.signature(engine.true) == full
            # A predicate constraining only below-horizon variables
            # occupies every cell.
            below = engine.cube([(NUM_VARS - 1, True)])
            assert engine.signature(below) == full

    def test_signature_agrees_across_engines(self):
        fast, ref = self._engines()
        rng_a, rng_b = case_rng(0x51C3), case_rng(0x51C3)
        for _ in range(100):
            f = random_pred(fast, rng_a)
            g = random_pred(ref, rng_b)
            assert fast.signature(f) == ref.signature(g)

    def test_signature_cached_on_handle(self):
        engine = fresh_engine("fast")
        rng = case_rng(0x51C4)
        f = random_pred(engine, rng)
        sig = engine.signature(f)
        assert f._sig == sig
        assert engine.signature(f) == sig
