#!/usr/bin/env python3
"""The Figure-2 HTTP policy on a multi-field data plane.

Reproduces the paper's running example: a 3-switch network in front of
subnet A, where operators add a policy that incoming HTTP traffic to
subnet A must take the path S3 → S2 → S1.  The example shows:

* five-tuple matches compiled to BDD predicates;
* the inverse model before and after the policy block (the Fast IMT
  "cross product" of Figure 2), including the MR2 aggregation at work;
* cover and waypoint requirements over packet subspaces.

Run:  python examples/waypoint_policy.py
"""

from repro import Flash, Match, Rule, Verdict, insert, requirement
from repro.core.model_manager import ModelWriter
from repro.headerspace.fields import five_tuple_layout
from repro.headerspace.match import Pattern
from repro.network.generators import three_node_example

HTTP_PORT = 80


def main():
    topo = three_node_example()
    layout = five_tuple_layout(8)
    s1, s2, s3 = (topo.id_of(n) for n in ("S1", "S2", "S3"))
    subnet_a, gateway = topo.id_of("A"), topo.id_of("GW")
    topo.device(subnet_a).labels["prefixes"] = [(0x10, 4), (0x20, 4)]

    dport = layout.field("dport").width

    def dst_prefix(value, length):
        return Pattern.prefix(value, length, layout.field("dst").width)

    # Initial data plane (left side of Figure 2).
    initial = [
        insert(s1, Rule(2, Match({"dst": dst_prefix(0x10, 4)}), subnet_a)),
        insert(s1, Rule(1, Match({"dst": dst_prefix(0x20, 4)}), subnet_a)),
        insert(s1, Rule(0, Match({}), s3)),
        insert(s2, Rule(2, Match({"dst": dst_prefix(0x10, 4)}), s1)),
        insert(s2, Rule(1, Match({"dst": dst_prefix(0x20, 4)}), s1)),
        insert(s2, Rule(0, Match({}), s3)),
        insert(s3, Rule(0, Match({}), gateway)),
    ]

    manager = ModelWriter(topo.switches(), layout)
    manager.submit(initial)
    manager.flush()
    print(f"initial inverse model: {manager.num_ecs()} equivalence classes")
    for pred, vec in manager.model.entries():
        actions = {
            topo.name_of(d): manager.model.action_of(vec, d)
            for d in topo.switches()
        }
        print(f"  |EC| = {pred.sat_count():>6} headers  actions = {actions}")

    # The policy event (right side of Figure 2): HTTP to the two subnets
    # enters at S3 and takes S3 → S2 → S1 → A.
    http = Pattern.exact(HTTP_PORT, dport)
    policy = [
        insert(s1, Rule(3, Match({"dst": dst_prefix(0x10, 4), "dport": http}), subnet_a)),
        insert(s1, Rule(3, Match({"dst": dst_prefix(0x20, 4), "dport": http}), subnet_a)),
        insert(s2, Rule(3, Match({"dst": dst_prefix(0x10, 4), "dport": http}), s1)),
        insert(s2, Rule(3, Match({"dst": dst_prefix(0x20, 4), "dport": http}), s1)),
        insert(s3, Rule(3, Match({"dst": dst_prefix(0x10, 4), "dport": http}), s2)),
        insert(s3, Rule(3, Match({"dst": dst_prefix(0x20, 4), "dport": http}), s2)),
    ]
    manager.submit(policy)
    manager.flush()
    b = manager.breakdown
    print(f"\npolicy block of {len(policy)} native updates decomposed into "
          f"{b.atomic_overwrites} atomic overwrites, aggregated to "
          f"{b.aggregated_overwrites} (MR2's Reduce I/II at work)")
    print(f"final inverse model: {manager.num_ecs()} equivalence classes")

    # Verify the waypoint with the requirement language on a fresh Flash.
    http_space = Match({"dst": dst_prefix(0x10, 4), "dport": http})
    via_s2 = requirement(
        "http-via-S2", topo, layout, http_space, ["S3"], "S3 S2 S1 .*"
    )
    flash = Flash(topo, layout, requirements=[via_s2], check_loops=True)
    per_device = {}
    for u in initial + policy:
        per_device.setdefault(u.device, []).append(u)
    reports = []
    for device, updates in per_device.items():
        reports = flash.receive(device, "policy-epoch", updates)
    verdicts = {getattr(r, "requirement", "loops"): r.verdict for r in reports}
    print(f"\nverification verdicts: "
          f"{ {k: v.value for k, v in verdicts.items()} }")
    assert verdicts["http-via-S2"] is Verdict.SATISFIED
    print("the HTTP policy path S3 → S2 → S1 is consistently satisfied.")


if __name__ == "__main__":
    main()
