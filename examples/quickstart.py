#!/usr/bin/env python3
"""Quickstart: verify a tiny data plane with Flash in ~40 lines.

Builds the paper's Figure-3 topology, expresses the waypoint requirement
"packets from S must reach D via W or Y" in the requirement language,
streams epoch-tagged FIB updates in, and prints the consistent early
detection verdicts as they fire.

Run:  python examples/quickstart.py
"""

from repro import Flash, Match, Rule, Verdict, dst_only_layout, insert, requirement
from repro.network.generators import figure3_example


def forward_all(topo, device, next_hop):
    """A rule forwarding every packet from `device` to `next_hop`."""
    return insert(
        topo.id_of(device), Rule(1, Match.wildcard(), topo.id_of(next_hop))
    )


def main():
    topo = figure3_example()
    layout = dst_only_layout(8)

    waypoint = requirement(
        name="waypoint-W-or-Y",
        topology=topo,
        layout=layout,
        packet_space=Match.wildcard(),
        sources=["S"],
        expression="S .* [W|Y] .* D",
    )
    flash = Flash(topo, layout, requirements=[waypoint], check_loops=True)

    # The network converges to S→A→B→E→C→D — it skips both waypoints, so
    # Flash must report a consistent violation, and *early*: the verdict
    # fires below, before B/E/C/D have even reported their FIBs.
    plan = [("S", "A"), ("A", "B"), ("B", "E"), ("E", "C"), ("C", "D")]
    for device, next_hop in plan:
        reports = flash.receive(
            topo.id_of(device), "epoch-1", [forward_all(topo, device, next_hop)]
        )
        for report in reports:
            if report.verdict is not Verdict.UNKNOWN:
                print(
                    f"after {device}'s FIB: {report.verdict.value} "
                    f"({getattr(report, 'requirement', 'loop check')})"
                )
    violation = flash.first_violation()
    assert violation is not None, "expected a consistent waypoint violation"
    print(f"\nfirst consistent verdict: {violation!r}")
    print(
        f"note: it fired after {len(plan)} of {len(topo.switches())} switches "
        "reported — W, Y and D never had to send their FIBs. "
        "That is CE2D's early detection."
    )


if __name__ == "__main__":
    main()
