#!/usr/bin/env python3
"""Consistent early detection under long-tail arrivals (the §4/§5.3 story).

Runs the OpenR-like routing simulation on the Internet2 backbone with:

* one switch running a buggy Decision module (wrong next hops → loop);
* one switch dampened by 60 s (the long tail).

Flash attaches to the simulation, tracks epochs, and reports the forwarding
loop consistently within milliseconds of simulated time — it never needs
the dampened switch's FIB.

Run:  python examples/early_detection.py
"""

from repro import Flash, Verdict, dst_only_layout
from repro.network.generators import internet2
from repro.routing.openr import OpenRSimulation

DAMPEN_SECONDS = 60.0


def main():
    topo = internet2()
    layout = dst_only_layout(8)
    buggy = topo.id_of("kans")
    dampened = topo.id_of("seat")
    print(f"buggy switch: {topo.name_of(buggy)}; "
          f"dampened switch: {topo.name_of(dampened)} (+{DAMPEN_SECONDS:.0f}s)\n")

    sim = OpenRSimulation(
        topo,
        layout,
        buggy_nodes=[buggy],
        dampening={dampened: DAMPEN_SECONDS},
        seed=42,
    )
    flash = Flash(topo, layout, check_loops=True)
    flash.attach_to(sim)

    sim.bootstrap()
    sim.run()

    print("FIB arrival timeline (simulated seconds):")
    for batch in sim.batches:
        print(f"  t={batch.time:>7.3f}  {topo.name_of(batch.device):<5} "
              f"epoch {batch.tag[:8]}  {len(batch.updates)} rule updates")

    loops = [r for r in flash.dispatcher.reports if r.verdict is Verdict.VIOLATED]
    assert loops, "the buggy switch should create a forwarding loop"
    first = min(loops, key=lambda r: r.time)
    print(f"\nCE2D reported a consistent LOOP at t={first.time:.3f}s "
          f"(path {[topo.name_of(d) for d in first.loop_path]})")
    print(f"waiting for the dampened switch would have taken "
          f"{DAMPEN_SECONDS:.0f}s — a "
          f"{DAMPEN_SECONDS / max(first.time, 1e-3):,.0f}x speedup, "
          "matching the Figure-9 story.")


if __name__ == "__main__":
    main()
