#!/usr/bin/env python3
"""Vector-protocol epochs via causal convergence detection (Appendix D.1).

Sync-state protocols hash their shared state into an epoch tag; BGP has no
shared state, so the paper's Appendix D.1 appends *causal* metadata to each
FIB update (which message caused it, which messages it emitted) and detects
convergence centrally.  This example:

1. runs a small BGP network announcing then withdrawing a prefix,
2. shows the detector tracking each event's outstanding message wave,
3. verifies each converged event's consistent data plane with Flash.

Run:  python examples/bgp_convergence.py
"""

from repro import Flash, Verdict, dst_only_layout
from repro.ce2d.causal import CausalConvergenceDetector
from repro.network.generators import internet2
from repro.routing.bgp import BgpSimulation

PREFIX = (0x40, 4)


def main():
    topo = internet2()
    layout = dst_only_layout(8)
    sim = BgpSimulation(topo, layout)
    flash = Flash(topo, layout, check_loops=True)

    verdicts = {}

    def on_converged(state):
        print(
            f"event {state.root}: converged after {state.records} causal "
            f"records from {len(state.devices)} routers "
            f"({len(state.updates)} FIB updates)"
        )
        per_device = {}
        for u in state.updates:
            per_device.setdefault(u.device, []).append(u)
        reports = []
        for device in topo.switches():
            reports = flash.receive(
                device, f"bgp-{state.root}", per_device.get(device, [])
            )
        verdicts[state.root] = reports[0].verdict

    detector = CausalConvergenceDetector(on_converged=on_converged)
    sim.add_collector(detector.observe)

    owner = topo.id_of("seat")
    print(f"announcing {PREFIX[0]:#x}/{PREFIX[1]} at seat ...")
    announce_event = sim.announce_prefix(owner, PREFIX)
    sim.run()
    print(f"  pending events while running: {detector.pending_events()}")

    print("withdrawing the prefix ...")
    withdraw_event = sim.withdraw_prefix(owner, PREFIX)
    sim.run()

    assert detector.is_converged(announce_event)
    assert detector.is_converged(withdraw_event)
    print(f"\nverdicts per converged event: "
          f"{ {e: v.value for e, v in verdicts.items()} }")
    assert all(v is Verdict.SATISFIED for v in verdicts.values())
    print("both converged BGP states verified loop-free — D.1's consistent "
          "model construction without epoch tags.")


if __name__ == "__main__":
    main()
