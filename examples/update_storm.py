#!/usr/bin/env python3
"""Update storms: Fast IMT vs per-update verification (the §1/§5.2 story).

Generates a Fabric (LNet-style) data center with source-match ECMP rules —
the workload that punishes both interval-based (Delta-net*) and per-update
(APKeep*) verifiers — bursts every rule insertion at the verifiers at once,
and prints the Table-3-style comparison: wall time, predicate/atom
operations, and equivalence classes.

Run:  python examples/update_storm.py [pods] [tors_per_pod]
"""

import sys
import time

from repro.baselines.apkeep import APKeepVerifier
from repro.baselines.deltanet import DeltaNetVerifier
from repro.core.model_manager import ModelWriter
from repro.dataplane.trace import inserts_only
from repro.fibgen.ecmp import std_fib_ecmp
from repro.headerspace.fields import dst_src_layout
from repro.network.generators import fabric


def main():
    pods = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    tors = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    topo = fabric(pods=pods, tors_per_pod=tors, fabrics_per_pod=2,
                  spines_per_plane=2)
    layout = dst_src_layout(10, 4)
    rules = std_fib_ecmp(topo, layout, src_buckets=4)
    storm = inserts_only(rules)
    print(f"fabric: {topo.num_devices} devices, "
          f"{sum(len(r) for r in rules.values())} rules, "
          f"storm of {len(storm)} updates\n")

    # --- Flash: the whole storm as one Fast IMT block -------------------
    manager = ModelWriter(topo.switches(), layout)
    start = time.perf_counter()
    manager.submit(storm)
    manager.flush()
    flash_s = time.perf_counter() - start
    print(f"{'Flash (Fast IMT)':<22} {flash_s:>8.3f}s "
          f"{manager.engine.metrics.total:>10} predicate ops "
          f"{manager.num_ecs():>6} ECs")
    b = manager.breakdown
    print(f"{'':<22} map {b.map_seconds:.3f}s | reduce {b.reduce_seconds:.3f}s"
          f" | apply {b.apply_seconds:.3f}s | "
          f"{b.atomic_overwrites} atomic → {b.aggregated_overwrites} "
          "aggregated overwrites")

    # --- APKeep*: one update at a time -----------------------------------
    apkeep = APKeepVerifier(topo.switches(), layout)
    start = time.perf_counter()
    apkeep.process_updates(storm)
    apkeep_s = time.perf_counter() - start
    print(f"{'APKeep* (per-update)':<22} {apkeep_s:>8.3f}s "
          f"{apkeep.metrics.total:>10} predicate ops "
          f"{apkeep.num_ecs():>6} ECs")

    # --- Delta-net*: intervals ----------------------------------------------
    deltanet = DeltaNetVerifier(topo.switches(), layout)
    start = time.perf_counter()
    deltanet.process_updates(storm)
    deltanet_s = time.perf_counter() - start
    print(f"{'Delta-net* (atoms)':<22} {deltanet_s:>8.3f}s "
          f"{deltanet.metrics.extra.get('atom_ops', 0):>10} atom ops      "
          f"{deltanet.num_atoms:>6} atoms")

    print(f"\nFlash speedup: {apkeep_s / flash_s:.1f}x over APKeep*, "
          f"{deltanet_s / flash_s:.1f}x over Delta-net*")
    # Sanity: all three agree on a few sampled headers.
    for header in range(0, layout.universe_size, layout.universe_size // 7):
        values = layout.unflatten(header)
        assert manager.snapshot.behavior(values) == deltanet.behavior(values)
    print("cross-checked: Flash and Delta-net* agree on sampled headers")


if __name__ == "__main__":
    main()
